// Bounded max-heap ("priority queue" of the paper's KNN IS shader).
//
// Keeps the K smallest (distance², index) pairs seen so far. The root is
// the current K-th nearest distance, which also serves as the shrinking
// search radius. Fixed capacity, no allocation after construction —
// mirrors the per-ray register/local-memory queue a GPU shader would use.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/error.hpp"

namespace rtnn {

class KnnHeap {
 public:
  struct Entry {
    float dist2 = std::numeric_limits<float>::infinity();
    std::uint32_t index = kInvalid;
  };

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  explicit KnnHeap(std::uint32_t k) : k_(k) { RTNN_CHECK(k > 0, "K must be positive"); entries_.reserve(k); }

  std::uint32_t capacity() const { return k_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(entries_.size()); }
  bool full() const { return size() == k_; }
  bool empty() const { return entries_.empty(); }

  /// Current worst (largest) kept distance²; +inf until the heap is full.
  /// This is the radius beyond which candidates cannot improve the result.
  float worst_dist2() const {
    return full() ? entries_.front().dist2 : std::numeric_limits<float>::infinity();
  }

  /// Offers a candidate; keeps it only if it is among the K nearest so far.
  /// Returns true if the candidate was kept.
  bool push(float dist2, std::uint32_t index) {
    if (!full()) {
      entries_.push_back({dist2, index});
      sift_up(size() - 1);
      return true;
    }
    if (dist2 >= entries_.front().dist2) return false;
    entries_.front() = {dist2, index};
    sift_down(0);
    return true;
  }

  void clear() { entries_.clear(); }

  /// Destructively extracts entries sorted by ascending distance².
  std::vector<Entry> extract_sorted() {
    std::vector<Entry> out(entries_.size());
    for (std::size_t i = out.size(); i-- > 0;) {
      out[i] = entries_.front();
      pop_root();
    }
    return out;
  }

  const std::vector<Entry>& raw_entries() const { return entries_; }

 private:
  void sift_up(std::uint32_t i) {
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (entries_[parent].dist2 >= entries_[i].dist2) break;
      std::swap(entries_[parent], entries_[i]);
      i = parent;
    }
  }

  void sift_down(std::uint32_t i) {
    const std::uint32_t n = size();
    for (;;) {
      const std::uint32_t l = 2 * i + 1;
      const std::uint32_t r = 2 * i + 2;
      std::uint32_t largest = i;
      if (l < n && entries_[l].dist2 > entries_[largest].dist2) largest = l;
      if (r < n && entries_[r].dist2 > entries_[largest].dist2) largest = r;
      if (largest == i) break;
      std::swap(entries_[i], entries_[largest]);
      i = largest;
    }
  }

  void pop_root() {
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
  }

  std::uint32_t k_;
  std::vector<Entry> entries_;
};

}  // namespace rtnn
