// Tiny leveled logger for harness/bench progress output.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace rtnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default kWarn so
/// library users see nothing unless they opt in (benches set kInfo).
/// Can also be set via the RTNN_LOG environment variable
/// (debug|info|warn|error|off).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

#define RTNN_LOG(level, expr)                                        \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::rtnn::log_level())) { \
      std::ostringstream rtnn_log_os;                                \
      rtnn_log_os << expr;                                           \
      ::rtnn::detail::log_emit(level, rtnn_log_os.str());            \
    }                                                                \
  } while (0)

#define RTNN_LOG_DEBUG(expr) RTNN_LOG(::rtnn::LogLevel::kDebug, expr)
#define RTNN_LOG_INFO(expr) RTNN_LOG(::rtnn::LogLevel::kInfo, expr)
#define RTNN_LOG_WARN(expr) RTNN_LOG(::rtnn::LogLevel::kWarn, expr)
#define RTNN_LOG_ERROR(expr) RTNN_LOG(::rtnn::LogLevel::kError, expr)

}  // namespace rtnn
