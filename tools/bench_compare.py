#!/usr/bin/env python3
"""Compare two rtnn_bench JSON reports and fail on median regressions.

CI regression gate: given a checked-in baseline (bench/baseline.json) and a
fresh report from `rtnn_bench --json`, compare the median of every timing
present in both, keyed by (case name, timing name). Exit non-zero when any
timing's median regresses by more than --threshold (default 30%).

Two noise guards for shared CI runners:
  * only timings above the --min-seconds floor in both reports are gated —
    sub-millisecond medians are dominated by scheduler jitter, not code;
  * a median regression only fails when the min regresses past the
    threshold too. A real slowdown raises every sample including the min;
    transient contamination (a neighbor stealing the core for one repeat)
    inflates the median while the min stays put.

New/removed timings are reported but never fail the gate (new cases must
be able to land, and the baseline is refreshed deliberately).

Stdlib only; schema is documented in src/bench/report.hpp.
"""

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    version = report.get("schema_version")
    if version != SUPPORTED_SCHEMA:
        sys.exit(
            f"bench_compare: {path} has schema_version {version!r}, "
            f"this script understands {SUPPORTED_SCHEMA}"
        )
    return report


def index_timings(report):
    """{(case_name, timing_name): (median_seconds, min_seconds)} for ok cases."""
    timings = {}
    for case in report.get("cases", []):
        if case.get("status") != "ok":
            continue
        for timing in case.get("timings", []):
            timings[(case["name"], timing["name"])] = (
                float(timing["median"]),
                float(timing["min"]),
            )
    return timings


# The serving.multi_tenant.* overload case publishes its verdict as
# scalars rather than stage times; surface them in the same informational
# breakdown so an admission-policy change is read next to its latencies.
# The serving.deadline.* robustness case contributes the same way: p99
# with deadlines on/off, the deadline-miss share under overload, and the
# degraded-request share when shard fault isolation drops a shard.
ADMISSION_METRICS = frozenset(
    {
        "queued_p99_ms",
        "admitted_p99_ms",
        "shed_share",
        "p99_ratio",
        "deadline_p99_on_ms",
        "deadline_p99_off_ms",
        "deadline_miss_share",
        "degraded_share",
    }
)

# The two-level tiled index publishes its per-frame locality as scalars
# (dynamic.tiled emits them as ``tiled.*``): the touched-tile fraction is
# the headline — how little of the index a frame of localized motion
# actually paid for — next to the tile count, the lazy build-on-first-route
# count, and the resident tile index bytes.
TILED_METRIC_PREFIX = "tiled."


def index_stage_metrics(report):
    """{(case_name, metric_name): value} for breakdown metrics.

    Any case may publish a TimeBreakdown as metrics named
    ``*stage.<phase>`` (plus ``*stage.launches``); pairing the two
    reports' values attributes a wall-clock delta to its phase — e.g.
    reorder cost showing up in stage.opt against a larger win in
    stage.search. The serving cases emit the shape per tenant
    (``flat.stage.*`` / ``sharded.stage.*``), fig11 emits it per dataset
    for the rtnn backend (``knn.rtnn.<ds>.stage.*``), and the
    multi-tenant overload case (serving.multi_tenant.*) contributes its
    admission scalars (ADMISSION_METRICS), and the tiled-index cases
    contribute their per-tile locality scalars (``tiled.*``).
    """
    metrics = {}
    for case in report.get("cases", []):
        if case.get("status") != "ok":
            continue
        for metric in case.get("metrics", []):
            if (
                "stage." in metric["name"]
                or metric["name"].startswith(TILED_METRIC_PREFIX)
                or (
                    case["name"].startswith("serving.")
                    and metric["name"] in ADMISSION_METRICS
                )
            ):
                metrics[(case["name"], metric["name"])] = float(metric["value"])
    return metrics


def print_stage_breakdown(baseline, current):
    """Informational per-stage deltas; never gates."""
    base_metrics = index_stage_metrics(baseline)
    cur_metrics = index_stage_metrics(current)
    common = sorted(set(base_metrics) & set(cur_metrics))
    if not common:
        return
    print()
    print("per-stage / admission breakdown (informational, not gated):")
    print(f"{'case':<24} {'stage':<20} {'base':>12} {'cur':>12} {'delta':>8}")
    for key in common:
        base = base_metrics[key]
        cur = cur_metrics[key]
        delta = (cur - base) / base if base > 0 else 0.0
        print(
            f"{key[0]:<24} {key[1]:<20} {base:>12.5f} {cur:>12.5f} {delta:>+7.1%}"
        )
    for key in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"note: new stage metric not in baseline: {key[0]}/{key[1]}")


def print_hotspot_attribution(baseline, current, moved, threshold):
    """PerFlow-style attribution: for each case whose timing moved past the
    threshold, name which TimeBreakdown stage moved the most.

    ``moved`` is the list of (case, timing, base, cur, delta) tuples the
    gate flagged (regressions and improvements). For every such case that
    also publishes ``<workload>.stage.<phase>`` metrics, the stage whose
    absolute seconds changed the most is named as the dominant mover —
    attributing the wall-clock delta to a pipeline phase instead of
    leaving it a single opaque number. Informational only; never gates.
    """
    if not moved:
        return
    base_metrics = index_stage_metrics(baseline)
    cur_metrics = index_stage_metrics(current)
    moved_cases = sorted({case for case, *_ in moved})
    # Group the stage metrics of each moved case by workload prefix
    # (the text before ".stage."; "stage.x" with no prefix groups as "").
    printed_header = False
    for case_name in moved_cases:
        workloads = {}
        for (case, metric), base_v in base_metrics.items():
            if case != case_name or "stage." not in metric:
                continue
            if (case, metric) not in cur_metrics:
                continue
            prefix, _, phase = metric.rpartition("stage.")
            if phase == "launches":
                continue
            workloads.setdefault(prefix.rstrip("."), []).append(
                (phase, base_v, cur_metrics[(case, metric)])
            )
        for workload, phases in sorted(workloads.items()):
            movers = sorted(
                ((cur_v - base_v, phase, base_v, cur_v) for phase, base_v, cur_v in phases),
                key=lambda m: abs(m[0]),
                reverse=True,
            )
            total_delta = sum(m[0] for m in movers)
            if not movers or abs(movers[0][0]) == 0.0:
                continue
            if not printed_header:
                print()
                print(
                    "hotspot attribution for timings moved past "
                    f"{threshold:.0%} (informational, not gated):"
                )
                printed_header = True
            delta, phase, base_v, cur_v = movers[0]
            share = delta / total_delta if total_delta else float("nan")
            print(
                f"  {case_name} [{workload or 'total'}]: dominant mover is "
                f"stage.{phase} ({base_v:.5f}s -> {cur_v:.5f}s, "
                f"{delta:+.5f}s, {share:.0%} of the net stage delta)"
            )


def failed_cases(report):
    return [c["name"] for c in report.get("cases", []) if c.get("status") != "ok"]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline report")
    parser.add_argument("current", help="freshly measured report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="max allowed median regression as a fraction (default 0.30 = +30%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=1e-3,
        help="ignore timings whose medians are below this in both reports "
        "(noise floor, default 1e-3)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="after printing the comparison, rewrite BASELINE from CURRENT "
        "and exit 0 — re-anchors the gate after a deliberate perf change "
        "instead of hand-editing the checked-in report",
    )
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    current = load_report(args.current)

    # Absolute-time comparison only means something when the measurement
    # conditions agree; warn loudly when they don't, before any median is
    # compared, so a gate failure (or pass) is read in context.
    for key in ("build_type", "compiler"):
        base_v = baseline.get("environment", {}).get(key)
        cur_v = current.get("environment", {}).get(key)
        if base_v != cur_v:
            print(
                f"WARNING: environment mismatch on {key!r}: "
                f"baseline={base_v!r} current={cur_v!r} — deltas include a "
                "machine/configuration component"
            )

    def report_threads(report):
        # `--threads` records the resolved worker count in options; older
        # reports only carry it in the environment block.
        options_threads = report.get("options", {}).get("threads")
        if options_threads:
            return options_threads
        return report.get("environment", {}).get("threads")

    if report_threads(baseline) != report_threads(current):
        print(
            f"WARNING: measurement options mismatch on 'threads': "
            f"baseline={report_threads(baseline)!r} "
            f"current={report_threads(current)!r} — medians are not "
            "directly comparable"
        )
    for key in ("scale", "repeats", "warmup"):
        base_v = baseline.get("options", {}).get(key)
        cur_v = current.get("options", {}).get(key)
        if base_v != cur_v:
            print(
                f"WARNING: measurement options mismatch on {key!r}: "
                f"baseline={base_v!r} current={cur_v!r} — medians are not "
                "directly comparable"
            )

    broken = failed_cases(current)
    if broken:
        print(f"FAIL: cases did not complete: {', '.join(broken)}")
        return 1

    base_timings = index_timings(baseline)
    cur_timings = index_timings(current)
    common = sorted(set(base_timings) & set(cur_timings))
    missing = sorted(set(base_timings) - set(cur_timings))
    new = sorted(set(cur_timings) - set(base_timings))

    regressions = []
    improvements = []
    skipped = 0
    print(f"{'case':<16} {'timing':<32} {'base[s]':>12} {'cur[s]':>12} {'delta':>8}")
    for key in common:
        base, base_min = base_timings[key]
        cur, cur_min = cur_timings[key]
        if base < args.min_seconds and cur < args.min_seconds:
            skipped += 1
            continue
        delta = (cur - base) / base if base > 0 else 0.0
        delta_min = (cur_min - base_min) / base_min if base_min > 0 else 0.0
        marker = ""
        if delta > args.threshold and delta_min > args.threshold:
            regressions.append((key, base, cur, delta))
            marker = "  << REGRESSION"
        elif delta > args.threshold:
            marker = "  (median noise: min held)"
        elif delta < -args.threshold:
            improvements.append((key, base, cur, delta))
            marker = "  (improved)"
        print(
            f"{key[0]:<16} {key[1]:<32} {base:>12.4f} {cur:>12.4f} "
            f"{delta:>+7.1%}{marker}"
        )

    print()
    print(
        f"compared {len(common)} timings "
        f"({skipped} below the {args.min_seconds}s noise floor skipped)"
    )
    for key in missing:
        print(f"note: timing gone from current report: {key[0]}/{key[1]}")
    for key in new:
        print(f"note: new timing not in baseline: {key[0]}/{key[1]}")
    if improvements:
        print(f"{len(improvements)} timings improved past the threshold — "
              "consider refreshing bench/baseline.json")
    print_stage_breakdown(baseline, current)
    moved = [(case, timing, base, cur, delta)
             for (case, timing), base, cur, delta in regressions + improvements]
    print_hotspot_attribution(baseline, current, moved, args.threshold)

    if args.update_baseline:
        rewritten = dict(current)
        rewritten["tag"] = "baseline"
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(rewritten, f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.current} "
              f"({len(cur_timings)} timings)")
        return 0

    if not common:
        print("FAIL: no comparable timings between the two reports")
        return 1
    if regressions:
        print(f"\nFAIL: {len(regressions)} median regression(s) beyond "
              f"+{args.threshold:.0%}:")
        for (case, timing), base, cur, delta in regressions:
            print(f"  {case}/{timing}: {base:.4f}s -> {cur:.4f}s ({delta:+.1%})")
        return 1
    print("OK: no median regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
