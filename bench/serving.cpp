// Serving benches: the concurrent SearchService vs per-request search().
//
// Not a paper figure. The paper's pipeline is evaluated on monolithic
// query arrays; a serving deployment sees the same total volume as many
// small in-flight requests from concurrent clients. These cases measure
// what the service's coalescing buys (and costs) at a fixed 100k-point
// cloud (absolute size, like the dynamic.* family — the object is the
// batched-vs-sequential ratio, comparable across runs regardless of
// --scale):
//
//   closed_loop  C client threads, each submit→wait→next over mixed
//                request sizes (16/64/256 queries). `batched.100k` drives
//                the service (one coalesced LaunchStage dispatch per
//                tick); `sequential.100k` is the pre-service behavior —
//                a per-request NeighborSearch::search() loop, paying the
//                per-call accel build every time.
//   open_loop    one client submitting at a fixed arrival rate while a
//                collector drains tickets: per-request latency
//                percentiles (p50/p90/p99) under batching delay.
//
// The client count C is rtnn_bench's --threads knob (default: RTNN_THREADS
// or the OpenMP default) — sweep it from the CLI; reports record the value
// in options.threads and bench_compare warns when two reports disagree.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "serving_traffic.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"
#include "service/service.hpp"

using namespace rtnn;

namespace {

constexpr std::size_t kServingPoints = 100'000;
constexpr std::uint32_t kServingK = 8;
constexpr int kRequestsPerClient = 6;

/// KNN params sized for ~2K expected neighbors at population n (the
/// dynamic.* convention); the naive launch path — serving traffic is many
/// small requests, where per-request scheduling cannot pay for itself.
SearchParams serving_params(std::size_t n) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kServingK;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kServingK * 3.0 / (4.0 * 3.14159265 * static_cast<double>(n))));
  params.opts = OptimizationFlags::none();
  return params;
}

using bench_traffic::coherent_request_queries;
using bench_traffic::percentile;
using bench_traffic::request_queries;

/// Per-stage seconds from the service's aggregate report, under the
/// `stage.` prefix tools/bench_compare.py breaks serving deltas down by
/// (reorder cost lands in stage.opt, the traversal win in stage.search).
void emit_stage_metrics(rtnn::bench::CaseContext& ctx, const std::string& prefix,
                        const service::ServiceStats& stats) {
  const TimeBreakdown& time = stats.report.time;
  ctx.metric(prefix + "stage.data", time.data, "s");
  ctx.metric(prefix + "stage.opt", time.opt, "s");
  ctx.metric(prefix + "stage.bvh", time.bvh, "s");
  ctx.metric(prefix + "stage.fs", time.first_search, "s");
  ctx.metric(prefix + "stage.search", time.search, "s");
  ctx.metric(prefix + "stage.launches", static_cast<double>(stats.batches));
}

}  // namespace

RTNN_BENCH_CASE(serving_closed_loop, "serving.closed_loop.100k",
                "Serving closed loop — batched submit vs per-request search()",
                "coalescing in-flight requests into one launch per tick "
                "amortizes the per-call index build and pipeline overhead",
                "absolute 100k points; client count = --threads") {
  const int clients = std::max(1, num_threads());
  const data::PointCloud cloud = data::uniform_box(
      kServingPoints, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 811));
  const SearchParams params = serving_params(cloud.size());
  const auto total_queries = static_cast<double>(
      bench_traffic::total_request_queries(cloud, clients, kRequestsPerClient));

  // The service path: C concurrent clients in closed loop. The service
  // (and its warm snapshot) persists across samples, as a deployment's
  // would; each invocation replays the full request schedule.
  service::SearchService service(cloud);
  const double batched_s = ctx.time(
      "batched.100k",
      [&] {
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c) {
          workers.emplace_back([&, c] {
            for (int r = 0; r < kRequestsPerClient; ++r) {
              (void)service.query(request_queries(cloud, c, r), params);
            }
          });
        }
        for (auto& w : workers) w.join();
      },
      {.work_items = total_queries});
  const service::ServiceStats stats = service.stats();

  // The pre-service behavior: the same request stream, one search() per
  // request. One searcher, static-path semantics: every call rebuilds.
  NeighborSearch sequential;
  sequential.set_points(cloud);
  const double sequential_s = ctx.time(
      "sequential.100k",
      [&] {
        for (int c = 0; c < clients; ++c) {
          for (int r = 0; r < kRequestsPerClient; ++r) {
            (void)sequential.search(request_queries(cloud, c, r), params);
          }
        }
      },
      {.work_items = total_queries});

  const double speedup = sequential_s / batched_s;
  ctx.metric("clients", clients);
  ctx.metric("speedup.100k", speedup, "x");
  ctx.metric("requests_per_batch",
             stats.batches ? static_cast<double>(stats.requests) /
                                 static_cast<double>(stats.batches)
                           : 0.0);
  emit_stage_metrics(ctx, "", stats);
  std::printf(
      "%8s %9s  %14s %14s %9s %14s\n"
      "%8zu %9d  %14.5f %14.5f %8.2fx %14.0f\n",
      "points", "clients", "batched[s]", "sequential[s]", "speedup", "queries/s",
      kServingPoints, clients, batched_s, sequential_s, speedup,
      total_queries / batched_s);
}

RTNN_BENCH_CASE(serving_coherent, "serving.coherent.100k",
                "Serving coherent traffic — batch optimizer vs arrival-order dispatch",
                "the paper's query reorganization over the *merged* cross-request "
                "set: Morton reorder + coincident-query dedup; duplicate-heavy "
                "lidar-slice traffic makes the win grow with the client count",
                "absolute 100k points; client counts 2 and max(2, --threads)") {
  const data::PointCloud cloud = data::uniform_box(
      kServingPoints, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 813));
  const SearchParams params = serving_params(cloud.size());

  std::printf("%8s %14s %14s %9s %9s\n", "clients", "optimized[s]", "arrival[s]",
              "speedup", "dedup");

  std::vector<int> sweep{2, std::max(2, num_threads())};
  if (sweep[1] == sweep[0]) sweep.pop_back();
  for (const int clients : sweep) {
    const auto total_queries = static_cast<double>(bench_traffic::total_coherent_queries(
        cloud, clients, kRequestsPerClient));
    const std::string tag = ".c" + std::to_string(clients);

    // The same coherent request schedule drives both configurations.
    auto closed_loop = [&](service::SearchService& service) {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (int r = 0; r < kRequestsPerClient; ++r) {
            (void)service.query(coherent_request_queries(cloud, c, r), params);
          }
        });
      }
      for (auto& w : workers) w.join();
    };

    // Optimizer on (the default): merged Morton reorder + coincident
    // dedup + homogeneous bins.
    service::SearchService optimized(cloud);
    const double optimized_s = ctx.time("batched" + tag, [&] { closed_loop(optimized); },
                                        {.work_items = total_queries});
    const service::ServiceStats on_stats = optimized.stats();

    // The PR-5 dispatcher: arrival-order concatenation, no reorganization.
    service::ServiceOptions arrival_options;
    arrival_options.batch_reorder = false;
    service::SearchService arrival(cloud, arrival_options);
    const double arrival_s = ctx.time("arrival" + tag, [&] { closed_loop(arrival); },
                                      {.work_items = total_queries});

    const double speedup = arrival_s / optimized_s;
    const double dedup_share =
        on_stats.queries ? static_cast<double>(on_stats.report.queries_deduped) /
                               static_cast<double>(on_stats.queries)
                         : 0.0;
    ctx.metric("speedup" + tag, speedup, "x");
    ctx.metric("dedup_share" + tag, dedup_share);
    ctx.metric("bins" + tag, static_cast<double>(on_stats.report.batch_bins));
    if (clients == sweep.back()) {
      emit_stage_metrics(ctx, "on.", on_stats);
      emit_stage_metrics(ctx, "off.", arrival.stats());
    }
    std::printf("%8d %14.5f %14.5f %8.2fx %8.1f%%\n", clients, optimized_s, arrival_s,
                speedup, 100.0 * dedup_share);
  }
}

RTNN_BENCH_CASE(serving_open_loop, "serving.open_loop.100k",
                "Serving open loop — request latency under a fixed arrival rate",
                "batching trades a bounded coalescing delay (the tick) for "
                "amortized launches; the percentiles price that trade",
                "absolute 100k points; single submitter, FIFO collector") {
  const data::PointCloud cloud = data::uniform_box(
      kServingPoints, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 812));
  const SearchParams params = serving_params(cloud.size());
  constexpr int kRequests = 48;

  service::SearchService service(cloud);

  // Calibrate the arrival rate off this machine: mean service time of a
  // short solo burst, then arrivals at 2x that period (a ~50%-utilized
  // server — loaded, not saturated; an unbounded queue would measure
  // queueing growth, not batching). The first query is excluded: it pays
  // the snapshot's one-time index build.
  (void)service.query(request_queries(cloud, 2, 0), params);
  Timer calibrate;
  for (int r = 0; r < 8; ++r) (void)service.query(request_queries(cloud, 1, r), params);
  const double period_s = 2.0 * calibrate.elapsed() / 8.0;

  std::vector<double> latencies;
  (void)ctx.time(
      "open_loop.100k",
      [&] {
        latencies.clear();
        latencies.resize(kRequests, 0.0);
        std::vector<service::SearchService::Ticket> tickets(kRequests);
        std::vector<Timer> stamps(kRequests);
        std::atomic<int> submitted{0};
        std::thread collector([&] {
          // FIFO: the dispatcher serves in arrival order, so waiting in
          // order observes each completion promptly.
          for (int r = 0; r < kRequests; ++r) {
            while (submitted.load(std::memory_order_acquire) <= r) {
              std::this_thread::sleep_for(std::chrono::microseconds(20));
            }
            tickets[static_cast<std::size_t>(r)].wait();
            latencies[static_cast<std::size_t>(r)] =
                stamps[static_cast<std::size_t>(r)].elapsed();
          }
        });
        for (int r = 0; r < kRequests; ++r) {
          Timer arrival;
          stamps[static_cast<std::size_t>(r)].reset();
          tickets[static_cast<std::size_t>(r)] =
              service.submit(request_queries(cloud, 0, r), params);
          submitted.fetch_add(1, std::memory_order_release);
          const double remaining = period_s - arrival.elapsed();
          if (remaining > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
          }
        }
        collector.join();
      },
      {.work_items = static_cast<double>(kRequests)});

  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);
  ctx.metric("arrival_period_ms", period_s * 1e3, "ms");
  ctx.metric("latency_p50_ms", p50 * 1e3, "ms");
  ctx.metric("latency_p90_ms", p90 * 1e3, "ms");
  ctx.metric("latency_p99_ms", p99 * 1e3, "ms");
  std::printf("%10s %12s %12s %12s\n%9.3fms %10.3fms %10.3fms %10.3fms\n",
              "period", "p50", "p90", "p99", period_s * 1e3, p50 * 1e3, p90 * 1e3,
              p99 * 1e3);
}
