// Micro characterizations backing the paper's in-text claims:
//
//   §3.1 "Step 2 ... is much more expensive than Step 1 — an order of
//         magnitude slower in our experiments."
//   §3.1 short rays eliminate the false-positive IS calls of long rays
//         (Figure 4c).
//   plus two substrate ablations DESIGN.md calls out: warp-lockstep vs
//   independent traversal overhead, and BVH leaf size.
#include <algorithm>
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/flat_knn.hpp"
#include "datasets/uniform.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(micro_steps, "micro.steps",
                "Micro — step costs, ray-length false positives, engine/leaf ablations",
                "Step 2 (IS) ~10x Step 1 (traversal); short rays avoid false-positive "
                "IS calls",
                "on RTX hardware Step 1 runs on dedicated RT cores; on this CPU "
                "substrate both are scalar code, so the per-event gap narrows") {
  const auto n = static_cast<std::size_t>(2e6 * ctx.scale() * 10);
  const data::PointCloud points =
      data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 3));
  const float radius = bench::auto_radius(points, 16);
  std::vector<Aabb> aabbs(n);
  for (std::size_t i = 0; i < n; ++i) aabbs[i] = Aabb::cube(points[i], 2.0f * radius);
  const ox::Accel accel = ox::Context{}.build_accel(aabbs);
  const std::size_t nq = n;
  std::vector<std::uint32_t> ids(nq);
  for (std::uint32_t i = 0; i < nq; ++i) ids[i] = i;

  // --- Step 1 vs Step 2 cost ---
  // Same launch measured twice: once with the IS body reduced to a no-op
  // counter (traversal-dominated) and once with the full sphere test +
  // priority queue (KNN IS shader).
  {
    struct TraversalOnly {
      std::span<const Vec3> queries;
      Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
      // Empty IS body: the engine still performs the traversal and the
      // ray-AABB tests (Step 1); nothing shared is written (a shared sink
      // would serialize the cores on one cache line).
      ox::TraceAction intersection(std::uint32_t, std::uint32_t) {
        return ox::TraceAction::kContinue;
      }
    };
    TraversalOnly trav{points};
    // Binary walk, not the wide SoA path: the derived ns-per-node-visit /
    // ns-per-IS-call constants model the RT core popping the binary tree
    // (what the warp-lockstep simulation counts), so the counters must
    // keep that meaning.
    ox::LaunchOptions model_opts;
    model_opts.use_wide_bvh = false;
    ox::LaunchStats stats;
    const double t_step1 = ctx.time(
        "step1_traversal",
        [&] {
          stats = ox::launch(accel, trav, static_cast<std::uint32_t>(nq), model_opts);
        },
        {.work_items = static_cast<double>(nq)});

    FlatKnnHeaps heaps(nq, 16);
    struct KnnIs {
      std::span<const Vec3> points;
      std::span<const Vec3> queries;
      float r2;
      FlatKnnHeaps* heaps;
      Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
      ox::TraceAction intersection(std::uint32_t i, std::uint32_t prim) {
        const float d2 = distance2(points[prim], queries[i]);
        if (d2 <= r2 && d2 < heaps->worst_dist2(i)) heaps->push(i, d2, prim);
        return ox::TraceAction::kContinue;
      }
    };
    KnnIs knn{points, points, radius * radius, &heaps};
    const double t_step2 = ctx.time(
        "step2_knn_is",
        [&] { ox::launch(accel, knn, static_cast<std::uint32_t>(nq), model_opts); },
        {.work_items = static_cast<double>(nq)});

    const double step1_per_event =
        1e9 * t_step1 / static_cast<double>(stats.node_visits);
    const double step2_extra_per_is =
        1e9 * (t_step2 - t_step1) / static_cast<double>(stats.is_calls);
    ctx.metric("step1_ns_per_node_visit", step1_per_event, "ns");
    ctx.metric("step2_ns_per_is_call", step2_extra_per_is, "ns");
    ctx.metric("step2_over_step1", step2_extra_per_is / step1_per_event, "x");
    std::printf("Step 1 (traversal) per node visit: %8.1f ns\n", step1_per_event);
    std::printf("Step 2 (KNN IS body) per call:     %8.1f ns  -> ratio %.1fx\n",
                step2_extra_per_is, step2_extra_per_is / step1_per_event);
    std::puts("substrate note: on RTX hardware Step 1 runs on dedicated RT cores,");
    std::puts("making its effective cost ~10x below an SM-side IS call; on this CPU");
    std::puts("substrate both are scalar code, so the per-event gap narrows. The");
    std::puts("paper's Step1-vs-Step2 asymmetry is reproduced by the k3_slow:k3_fast");
    std::puts("ratio in micro_costmodel (sphere test vs bounds-only IS).");
  }

  // --- Short vs long rays: false-positive IS calls (Figure 4c) ---
  {
    struct RayLenProbe {
      std::span<const Vec3> queries;
      float tmax;
      Ray raygen(std::uint32_t i) const {
        return Ray{queries[i], {1.0f, 0.0f, 0.0f}, 0.0f, tmax};
      }
      ox::TraceAction intersection(std::uint32_t, std::uint32_t) {
        return ox::TraceAction::kContinue;
      }
    };
    RayLenProbe short_probe{points, 1e-16f};
    RayLenProbe long_probe{points, 10.0f * radius};
    const auto s_short =
        ox::launch(accel, short_probe, static_cast<std::uint32_t>(nq));
    const auto s_long = ox::launch(accel, long_probe, static_cast<std::uint32_t>(nq));
    const double factor = s_long.is_calls_per_ray() / s_short.is_calls_per_ray();
    ctx.metric("long_ray_false_positive_factor", factor, "x");
    std::printf("\nIS calls/query — short rays (tmax=1e-16): %.2f, long rays "
                "(tmax=10r): %.2f\n",
                s_short.is_calls_per_ray(), s_long.is_calls_per_ray());
    std::printf("long-ray false-positive factor: %.2fx (all extra IS calls are "
                "rejected by Step 2)\n", factor);
  }

  // --- Engine ablation: independent vs warp-lockstep wall clock ---
  {
    NeighborResult result(nq, 16, false);
    pipelines::RangePipeline pipeline(points, points, ids, radius, 16, false, result);
    ox::LaunchOptions opt;
    const double t_ind = ctx.time(
        "engine.independent",
        [&] { ox::launch(accel, pipeline, static_cast<std::uint32_t>(nq), opt); },
        {.work_items = static_cast<double>(nq)});
    NeighborResult result2(nq, 16, false);
    pipelines::RangePipeline pipeline2(points, points, ids, radius, 16, false, result2);
    opt.model = ox::ExecutionModel::kWarpLockstep;
    const double t_simt = ctx.time(
        "engine.lockstep",
        [&] { ox::launch(accel, pipeline2, static_cast<std::uint32_t>(nq), opt); },
        {.work_items = static_cast<double>(nq)});
    ctx.metric("lockstep_overhead", t_simt / t_ind, "x");
    std::printf("\nengine ablation: independent %.3fs vs warp-lockstep %.3fs "
                "(%.2fx lockstep overhead)\n",
                t_ind, t_simt, t_simt / t_ind);
  }

  // --- BVH leaf-size ablation ---
  {
    std::printf("\nleaf-size ablation (range search, K=16):\n");
    std::printf("%10s %12s %12s %14s\n", "leaf", "build[s]", "search[s]", "IS/query");
    for (const std::uint32_t leaf : {1u, 2u, 4u, 8u}) {
      ox::AccelBuildOptions build_opts;
      build_opts.leaf_size = leaf;
      const std::string suffix = "leaf" + std::to_string(leaf);
      ox::Accel a;
      const double t_build =
          ctx.time("build." + suffix,
                   [&] { a = ox::Context{}.build_accel(aabbs, build_opts); },
                   {.work_items = static_cast<double>(n)});
      NeighborResult result(nq, 16, false);
      pipelines::RangePipeline pipeline(points, points, ids, radius, 16, false, result);
      ox::LaunchStats stats;
      const double t_search = ctx.time(
          "search." + suffix,
          [&] { stats = ox::launch(a, pipeline, static_cast<std::uint32_t>(nq)); },
          {.work_items = static_cast<double>(nq)});
      std::printf("%10u %12.3f %12.3f %14.2f\n", leaf, t_build, t_search,
                  stats.is_calls_per_ray());
    }
  }
}
