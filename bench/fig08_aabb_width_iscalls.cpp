// Figure 8: number of IS-shader calls vs AABB width.
//
// Paper: IS calls grow *super-linearly* with AABB width — the AABB volume
// grows cubically, so the number of AABBs enclosing a query grows
// cubically too. Footnote 1 infers that time-per-IS-call is roughly
// constant because Figures 7 and 8 share the same trend; this harness
// verifies that inference directly (we can see the hidden traversal
// counters the paper could not).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "datasets/point_cloud.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

int main() {
  const double scale = bench::bench_scale();
  bench::print_figure_header(
      "Figure 8 — IS calls vs AABB width",
      "IS calls grow cubically with AABB width; time per IS call ~constant");

  bench::BenchDataset ds = bench::paper_dataset("KITTI-6M", scale, 16);
  const data::PointCloud queries =
      data::jittered_queries(ds.points, ds.points.size() / 4, 0.1f, 13);

  std::printf("%12s %16s %16s %18s\n", "width[m]", "IS calls", "node visits",
              "ns per IS call");
  double prev_calls = 0.0;
  double prev_width = 0.0;
  std::vector<double> exponents;
  for (const float width : {0.5f, 1.0f, 2.0f, 4.0f, 8.0f, 16.0f}) {
    std::vector<Aabb> aabbs(ds.points.size());
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
      aabbs[i] = Aabb::cube(ds.points[i], width);
    }
    const ox::Accel accel = ox::Context{}.build_accel(aabbs);
    NeighborResult result(queries.size(), 0xffffff, /*store_indices=*/false);
    std::vector<std::uint32_t> ids(queries.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    pipelines::RangePipeline pipeline(ds.points, queries, ids, width / 2.0f, 0xffffff,
                                      false, result);
    ox::LaunchStats stats;
    const double seconds = bench::time_once([&] {
      stats = ox::launch(accel, pipeline, static_cast<std::uint32_t>(queries.size()));
    });
    const double per_call =
        stats.is_calls ? 1e9 * seconds / static_cast<double>(stats.is_calls) : 0.0;
    std::printf("%12.1f %16llu %16llu %18.1f\n", width,
                static_cast<unsigned long long>(stats.is_calls),
                static_cast<unsigned long long>(stats.node_visits), per_call);
    if (prev_calls > 0.0 && stats.is_calls > 0) {
      exponents.push_back(std::log(static_cast<double>(stats.is_calls) / prev_calls) /
                          std::log(width / prev_width));
    }
    prev_calls = static_cast<double>(stats.is_calls);
    prev_width = width;
  }
  double mean_exp = 0.0;
  for (const double e : exponents) mean_exp += e;
  if (!exponents.empty()) mean_exp /= static_cast<double>(exponents.size());
  std::printf("\nmeasured growth exponent of IS calls vs width: %.2f "
              "(paper reasoning predicts ~3 in the volumetric regime;\n"
              " the thin-z LiDAR slab flattens toward ~2 once widths exceed the "
              "z-extent)\n", mean_exp);
  return 0;
}
