// Figure 8: number of IS-shader calls vs AABB width.
//
// Paper: IS calls grow *super-linearly* with AABB width — the AABB volume
// grows cubically, so the number of AABBs enclosing a query grows
// cubically too. Footnote 1 infers that time-per-IS-call is roughly
// constant because Figures 7 and 8 share the same trend; this harness
// verifies that inference directly (we can see the hidden traversal
// counters the paper could not).
#include <cmath>
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/point_cloud.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig08, "fig08", "Figure 8 — IS calls vs AABB width",
                "IS calls grow cubically with AABB width; time per IS call ~constant",
                "the thin-z LiDAR slab flattens the exponent toward ~2 once widths "
                "exceed the z-extent") {
  bench::BenchDataset ds = bench::paper_dataset("KITTI-6M", ctx.scale(), 16, ctx.seed());
  const data::PointCloud queries = data::jittered_queries(
      ds.points, ds.points.size() / 4, 0.1f, bench::mix_seed(ctx.seed(), 13));

  std::printf("%12s %16s %16s %18s\n", "width[m]", "IS calls", "node visits",
              "ns per IS call");
  double prev_calls = 0.0;
  double prev_width = 0.0;
  std::vector<double> exponents;
  const struct { float width; const char* label; } sweeps[] = {
      {0.5f, "w0.5"}, {1.0f, "w1"}, {2.0f, "w2"},
      {4.0f, "w4"},   {8.0f, "w8"}, {16.0f, "w16"}};
  for (const auto& sweep : sweeps) {
    std::vector<Aabb> aabbs(ds.points.size());
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
      aabbs[i] = Aabb::cube(ds.points[i], sweep.width);
    }
    const ox::Accel accel = ox::Context{}.build_accel(aabbs);
    NeighborResult result(queries.size(), 0xffffff, /*store_indices=*/false);
    std::vector<std::uint32_t> ids(queries.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    pipelines::RangePipeline pipeline(ds.points, queries, ids, sweep.width / 2.0f,
                                      0xffffff, false, result);
    ox::LaunchStats stats;
    // Binary walk: the figure's IS-call and node-visit columns count the
    // RT-core model's per-node work, which the wide SoA path coarsens.
    ox::LaunchOptions options;
    options.use_wide_bvh = false;
    const double seconds = ctx.time(
        std::string("trace.") + sweep.label,
        [&] {
          stats = ox::launch(accel, pipeline,
                             static_cast<std::uint32_t>(queries.size()), options);
        },
        {.work_items = static_cast<double>(queries.size())});
    const double per_call =
        stats.is_calls ? 1e9 * seconds / static_cast<double>(stats.is_calls) : 0.0;
    ctx.metric(std::string("is_calls.") + sweep.label,
               static_cast<double>(stats.is_calls));
    ctx.metric(std::string("ns_per_is.") + sweep.label, per_call, "ns");
    std::printf("%12.1f %16llu %16llu %18.1f\n", sweep.width,
                static_cast<unsigned long long>(stats.is_calls),
                static_cast<unsigned long long>(stats.node_visits), per_call);
    if (prev_calls > 0.0 && stats.is_calls > 0) {
      exponents.push_back(std::log(static_cast<double>(stats.is_calls) / prev_calls) /
                          std::log(sweep.width / prev_width));
    }
    prev_calls = static_cast<double>(stats.is_calls);
    prev_width = sweep.width;
  }
  double mean_exp = 0.0;
  for (const double e : exponents) mean_exp += e;
  if (!exponents.empty()) mean_exp /= static_cast<double>(exponents.size());
  ctx.metric("growth_exponent", mean_exp);
  std::printf("\nmeasured growth exponent of IS calls vs width: %.2f "
              "(paper reasoning predicts ~3 in the volumetric regime;\n"
              " the thin-z LiDAR slab flattens toward ~2 once widths exceed the "
              "z-extent)\n", mean_exp);
}
