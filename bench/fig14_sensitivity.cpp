// Figure 14: sensitivity of RTNN's speedup to the search radius r (14a)
// and the neighbor count K (14b), on Buddha-4.6M.
//
// Paper: speedup rises with r at first (more accelerable work), then falls
// once the sphere covers most of the scene (search terminates quickly and
// RTNN's setup overheads dominate) while staying >1; speedup grows with K
// until very large K (128), where the bundling algorithm over-merges.
#include <cstdio>

#include "baselines/fastrnn.hpp"
#include "baselines/grid_knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

int main() {
  const double scale = bench::bench_scale();
  bench::print_figure_header(
      "Figure 14 — sensitivity to r and K (Buddha)",
      "speedup rises then falls with r (still >1); rises with K, degrading "
      "only at K=128");

  bench::BenchDataset ds = bench::paper_dataset("Buddha-4.6M", scale, 16);
  const auto& points = ds.points;

  // --- 14a: sweep r (Buddha lives in a unit cube, like the paper's) ---
  std::printf("\n--- 14a: range-search speedup vs r (K = 16) ---\n");
  std::printf("%10s %12s %14s %14s\n", "r", "rtnn[s]", "vs PCLOctree", "vs cuNSearch");
  for (const float r : {0.00124f, 0.0062f, 0.0124f, 0.062f, 0.124f}) {
    SearchParams params;
    params.mode = SearchMode::kRange;
    params.radius = r;
    params.k = 16;
    params.store_indices = false;
    NeighborSearch search;
    const double t_rtnn = bench::time_once([&] {
      search.set_points(points);
      search.search(points, params);
    });
    const double t_octree = bench::time_once([&] {
      baselines::Octree octree;
      octree.build(points);
      octree.range_search(points, r, 16);
    });
    const double t_grid = bench::time_once([&] {
      baselines::GridRangeSearch grid;
      grid.build(points, r);
      grid.search(points, 16);
    });
    std::printf("%10.5f %12.3f %13.1fx %13.1fx\n", r, t_rtnn, t_octree / t_rtnn,
                t_grid / t_rtnn);
  }

  // --- 14b: sweep K at the auto radius ---
  std::printf("\n--- 14b: KNN speedup vs K (r = %.4f) ---\n", ds.radius);
  std::printf("%10s %12s %14s %14s\n", "K", "rtnn[s]", "vs FRNN", "vs FastRNN*");
  for (const std::uint32_t k : {1u, 4u, 16u, 64u, 128u}) {
    SearchParams params;
    params.mode = SearchMode::kKnn;
    params.radius = ds.radius;
    params.k = k;
    params.store_indices = false;
    NeighborSearch search;
    const double t_rtnn = bench::time_once([&] {
      search.set_points(points);
      search.search(points, params);
    });
    const double t_frnn = bench::time_once([&] {
      baselines::GridKnn grid;
      grid.build(points, ds.radius);
      grid.search(points, k);
    });
    // FastRNN probed on 10% of queries and extrapolated.
    const std::size_t probe = std::max<std::size_t>(points.size() / 10, 1000);
    const std::span<const Vec3> probe_queries(points.data(),
                                              std::min(probe, points.size()));
    baselines::FastRnn fastrnn;
    const double t_fast =
        bench::time_once([&] {
          fastrnn.build(points);
          fastrnn.knn_search(probe_queries, ds.radius, k);
        }) *
        static_cast<double>(points.size()) / static_cast<double>(probe_queries.size());
    std::printf("%10u %12.3f %13.1fx %13.1fx\n", k, t_rtnn, t_frnn / t_rtnn,
                t_fast / t_rtnn);
  }
  std::puts("\nexpected shape: 14a speedup peaks at moderate r and decays (stays >1);");
  std::puts("14b speedup grows with K, flattening/degrading at the largest K.");
  std::puts("(* FastRNN extrapolated from a 10% query probe.)");
  return 0;
}
