// Figure 14: sensitivity of RTNN's speedup to the search radius r (14a)
// and the neighbor count K (14b), on Buddha-4.6M.
//
// Paper: speedup rises with r at first (more accelerable work), then falls
// once the sphere covers most of the scene (search terminates quickly and
// RTNN's setup overheads dominate) while staying >1; speedup grows with K
// until very large K (128), where the bundling algorithm over-merges.
#include <algorithm>
#include <cstdio>

#include "baselines/fastrnn.hpp"
#include "baselines/grid_knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig14, "fig14", "Figure 14 — sensitivity to r and K (Buddha)",
                "speedup rises then falls with r (still >1); rises with K, degrading "
                "only at K=128",
                "FastRNN extrapolated from a 10% query probe") {
  bench::BenchDataset ds = bench::paper_dataset("Buddha-4.6M", ctx.scale(), 16, ctx.seed());
  const auto& points = ds.points;
  const double nq = static_cast<double>(points.size());

  // --- 14a: sweep r (Buddha lives in a unit cube, like the paper's) ---
  std::printf("\n--- 14a: range-search speedup vs r (K = 16) ---\n");
  std::printf("%10s %12s %14s %14s\n", "r", "rtnn[s]", "vs PCLOctree", "vs cuNSearch");
  const struct { float r; const char* label; } r_sweeps[] = {
      {0.00124f, "r0.00124"}, {0.0062f, "r0.0062"}, {0.0124f, "r0.0124"},
      {0.062f, "r0.062"},     {0.124f, "r0.124"}};
  for (const auto& sweep : r_sweeps) {
    SearchParams params;
    params.mode = SearchMode::kRange;
    params.radius = sweep.r;
    params.k = 16;
    params.store_indices = false;
    NeighborSearch search;
    const double t_rtnn = ctx.time(std::string("14a.rtnn.") + sweep.label,
                                   [&] {
                                     search.set_points(points);
                                     search.search(points, params);
                                   },
                                   {.work_items = nq});
    const double t_octree = ctx.time(std::string("14a.octree.") + sweep.label,
                                     [&] {
                                       baselines::Octree octree;
                                       octree.build(points);
                                       octree.range_search(points, sweep.r, 16);
                                     },
                                     {.work_items = nq});
    const double t_grid = ctx.time(std::string("14a.grid.") + sweep.label,
                                   [&] {
                                     baselines::GridRangeSearch grid;
                                     grid.build(points, sweep.r);
                                     grid.search(points, 16);
                                   },
                                   {.work_items = nq});
    ctx.metric(std::string("14a.speedup.octree.") + sweep.label, t_octree / t_rtnn, "x");
    ctx.metric(std::string("14a.speedup.grid.") + sweep.label, t_grid / t_rtnn, "x");
    std::printf("%10.5f %12.3f %13.1fx %13.1fx\n", sweep.r, t_rtnn, t_octree / t_rtnn,
                t_grid / t_rtnn);
  }

  // --- 14b: sweep K at the auto radius ---
  std::printf("\n--- 14b: KNN speedup vs K (r = %.4f) ---\n", ds.radius);
  std::printf("%10s %12s %14s %14s\n", "K", "rtnn[s]", "vs FRNN", "vs FastRNN*");
  for (const std::uint32_t k : {1u, 4u, 16u, 64u, 128u}) {
    const std::string label = "k" + std::to_string(k);
    SearchParams params;
    params.mode = SearchMode::kKnn;
    params.radius = ds.radius;
    params.k = k;
    params.store_indices = false;
    NeighborSearch search;
    const double t_rtnn = ctx.time("14b.rtnn." + label,
                                   [&] {
                                     search.set_points(points);
                                     search.search(points, params);
                                   },
                                   {.work_items = nq});
    const double t_frnn = ctx.time("14b.frnn." + label,
                                   [&] {
                                     baselines::GridKnn grid;
                                     grid.build(points, ds.radius);
                                     grid.search(points, k);
                                   },
                                   {.work_items = nq});
    // FastRNN probed on 10% of queries and extrapolated.
    const std::size_t probe = std::max<std::size_t>(points.size() / 10, 1000);
    const std::span<const Vec3> probe_queries(points.data(),
                                              std::min(probe, points.size()));
    const double t_probe = ctx.time("14b.fastrnn_probe." + label,
                                    [&] {
                                      baselines::FastRnn fastrnn;
                                      fastrnn.build(points);
                                      fastrnn.knn_search(probe_queries, ds.radius, k);
                                    },
                                    {.work_items = static_cast<double>(probe_queries.size())});
    const double t_fast =
        t_probe * static_cast<double>(points.size()) /
        static_cast<double>(probe_queries.size());
    ctx.metric("14b.speedup.frnn." + label, t_frnn / t_rtnn, "x");
    ctx.metric("14b.speedup.fastrnn." + label, t_fast / t_rtnn, "x");
    std::printf("%10u %12.3f %13.1fx %13.1fx\n", k, t_rtnn, t_frnn / t_rtnn,
                t_fast / t_rtnn);
  }
  std::puts("\nexpected shape: 14a speedup peaks at moderate r and decays (stays >1);");
  std::puts("14b speedup grows with K, flattening/degrading at the largest K.");
  std::puts("(* FastRNN extrapolated from a 10% query probe.)");
}
