// Figure 16 (appendix C): number of queries per partition vs the
// partition's AABB size.
//
// Paper: inversely correlated — "only a handful of sparsely located
// queries need a large AABB, whereas most of queries should be captured
// by small AABBs" (~6M queries). This empirical structure is what makes
// the bundling theorem (keep populous partitions separate, merge the
// sparse ones) optimal. Deterministic structure, so this case records
// metrics, not timings.
#include <cstdio>
#include <numeric>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig16, "fig16",
                "Figure 16 — queries per partition vs AABB size",
                "inverse correlation: most queries in small-AABB partitions, few in "
                "large ones (~6M queries)",
                "query counts fall as AABB size grows (score near 1)") {
  for (const char* name : {"KITTI-6M", "NBody-9M"}) {
    bench::BenchDataset ds = bench::paper_dataset(name, ctx.scale(), 16, ctx.seed());
    SearchParams params;
    params.mode = SearchMode::kKnn;
    params.radius = bench::paper_radius(name, ds);
    params.k = 16;
    params.max_grid_cells = std::uint64_t{1} << 24;  // the paper's "finest
    // cell size allowed by memory" knob
    NeighborSearch search;
    search.set_points(ds.points);
    std::vector<std::uint32_t> order(ds.points.size());
    std::iota(order.begin(), order.end(), 0u);
    const PartitionSet parts = search.partition(ds.points, order, params);

    std::printf("\n--- %s (%zu queries, %zu partitions, cell %.4f) ---\n", name,
                ds.points.size(), parts.partitions.size(), parts.cell_size);
    std::printf("%14s %14s %12s %10s\n", "AABB size", "#queries", "megacell",
                "fallback");
    for (const Partition& p : parts.partitions) {
      std::printf("%14.4f %14zu %12.4f %10s\n", p.aabb_width, p.query_ids.size(),
                  p.megacell_width, p.hit_sphere_limit ? "yes" : "");
    }
    // Rank correlation between AABB size and query count.
    double concordant = 0, discordant = 0;
    for (std::size_t i = 0; i < parts.partitions.size(); ++i) {
      for (std::size_t j = i + 1; j < parts.partitions.size(); ++j) {
        const double dw = static_cast<double>(parts.partitions[i].aabb_width) -
                          parts.partitions[j].aabb_width;
        const double dn = static_cast<double>(parts.partitions[i].query_ids.size()) -
                          static_cast<double>(parts.partitions[j].query_ids.size());
        if (dw * dn < 0) ++concordant;
        if (dw * dn > 0) ++discordant;
      }
    }
    const double total = concordant + discordant;
    const double score = total > 0 ? concordant / total : 1.0;
    ctx.metric(std::string(name) + ".partitions",
               static_cast<double>(parts.partitions.size()));
    ctx.metric(std::string(name) + ".inverse_correlation", score);
    std::printf("inverse-correlation score: %.2f (1 = perfectly inverse)\n", score);
  }
  std::puts("\nexpected shape: query counts fall as AABB size grows (score near 1).");
}
