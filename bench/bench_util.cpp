#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>

#include "baselines/brute_force.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "datasets/lidar.hpp"
#include "datasets/nbody.hpp"
#include "datasets/surface.hpp"

namespace rtnn::bench {

double bench_scale() {
  if (const char* env = std::getenv("RTNN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return std::max(s, 0.002);
  }
  return 0.02;
}

float auto_radius(const data::PointCloud& points, std::uint32_t k) {
  RTNN_CHECK(!points.empty(), "empty dataset");
  // Median K-th-neighbor distance over 64 sampled queries, brute force.
  Pcg32 rng(999);
  const std::size_t samples = 64;
  std::vector<Vec3> queries(samples);
  for (auto& q : queries) {
    q = points[rng.next_bounded(static_cast<std::uint32_t>(points.size()))];
  }
  const auto knn = baselines::brute_force_knn(points, queries, 1e30f, k);
  std::vector<float> kth;
  for (std::size_t q = 0; q < samples; ++q) {
    const auto row = knn.neighbors(q);
    if (row.empty()) continue;
    kth.push_back(distance(points[row.back()], queries[q]));
  }
  RTNN_CHECK(!kth.empty(), "auto_radius failed");
  std::nth_element(kth.begin(), kth.begin() + kth.size() / 2, kth.end());
  const float median = kth[kth.size() / 2];
  return std::max(median * 1.5f, 1e-6f);
}

namespace {

BenchDataset make_dataset(const std::string& name, data::PointCloud points,
                          std::uint32_t k) {
  BenchDataset ds;
  ds.name = name;
  ds.points = std::move(points);
  ds.radius = auto_radius(ds.points, k);
  return ds;
}

std::size_t scaled(double paper_points, double scale) {
  return static_cast<std::size_t>(std::max(2000.0, paper_points * scale));
}

}  // namespace

BenchDataset paper_dataset(const std::string& name, double scale, std::uint32_t k,
                           std::uint64_t seed) {
  auto lidar = [&](double n, std::uint64_t base) {
    data::LidarParams params;
    params.target_points = scaled(n, scale);
    params.seed = mix_seed(seed, base);
    return data::lidar_scan(params);
  };
  auto nbody = [&](double n, std::uint64_t base) {
    data::NBodyParams params;
    params.target_points = scaled(n, scale);
    params.seed = mix_seed(seed, base);
    return data::nbody_cluster(params);
  };
  auto surface = [&](data::SurfaceModel model, double n, std::uint64_t base) {
    data::SurfaceParams params;
    params.model = model;
    params.target_points = scaled(n, scale);
    params.seed = mix_seed(seed, base);
    return data::surface_scan(params);
  };

  if (name == "KITTI-1M") return make_dataset(name, lidar(1e6, 41), k);
  if (name == "KITTI-6M") return make_dataset(name, lidar(6e6, 42), k);
  if (name == "KITTI-12M") return make_dataset(name, lidar(12e6, 43), k);
  if (name == "KITTI-25M") return make_dataset(name, lidar(25e6, 44), k);
  if (name == "NBody-9M") return make_dataset(name, nbody(9e6, 45), k);
  if (name == "NBody-10M") return make_dataset(name, nbody(10e6, 46), k);
  if (name == "Bunny-360K")
    return make_dataset(name, surface(data::SurfaceModel::kBunny, 3.6e5, 47), k);
  if (name == "Dragon-3.6M")
    return make_dataset(name, surface(data::SurfaceModel::kDragon, 3.6e6, 48), k);
  if (name == "Buddha-4.6M")
    return make_dataset(name, surface(data::SurfaceModel::kBuddha, 4.6e6, 49), k);
  throw Error("unknown paper dataset: " + name);
}

std::vector<BenchDataset> paper_datasets(double scale, std::uint32_t k,
                                         std::uint64_t seed) {
  std::vector<BenchDataset> all;
  for (const char* name :
       {"KITTI-1M", "KITTI-6M", "KITTI-12M", "KITTI-25M", "NBody-9M", "NBody-10M",
        "Bunny-360K", "Dragon-3.6M", "Buddha-4.6M"}) {
    all.push_back(paper_dataset(name, scale, k, seed));
  }
  return all;
}

float paper_radius(const std::string& name, const BenchDataset& ds) {
  if (name.rfind("KITTI", 0) == 0) return 3.0f;
  if (name.rfind("NBody", 0) == 0) return 10.0f;
  return ds.radius;
}

}  // namespace rtnn::bench
