// Sharded + multi-tenant serving benches (the PR-7 service surface).
//
// Not a paper figure. Two questions about the multi-tenant registry at
// the fixed 100k-point serving scale (absolute size, like the serving.*
// family — the object is a ratio between two configurations of the same
// service, comparable across runs regardless of --scale):
//
//   sharded      the same cloud served whole vs split into Morton-
//                contiguous spatial shards (CloudConfig::shard_threshold):
//                the scatter-gather overhead vs the smaller per-shard
//                indexes, under the coherent closed-loop schedule.
//   multi_tenant four tenants behind one dispatcher at ~2x the measured
//                service capacity: admission OFF queues the overload (p99
//                grows with the backlog), admission ON sheds it at the
//                door (AdmissionOptions::max_queue_depth) — the p99 of
//                the *admitted* requests is the SLO the shedding buys,
//                shed_share is what it costs.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "core/timing.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"
#include "rtnn/sharding.hpp"
#include "serving_traffic.hpp"
#include "service/service.hpp"

using namespace rtnn;

namespace {

constexpr std::size_t kServingPoints = 100'000;
constexpr std::uint32_t kServingK = 8;
constexpr int kRequestsPerClient = 6;

/// KNN params sized for ~2K expected neighbors at population n (the
/// serving.* convention).
SearchParams serving_params(std::size_t n) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kServingK;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kServingK * 3.0 / (4.0 * 3.14159265 * static_cast<double>(n))));
  params.opts = OptimizationFlags::none();
  return params;
}

using bench_traffic::coherent_request_queries;
using bench_traffic::percentile;
using bench_traffic::request_queries;

/// Per-stage seconds under the `stage.` prefix tools/bench_compare.py
/// breaks serving deltas down by (route+gather cost lands in stage.opt).
void emit_stage_metrics(rtnn::bench::CaseContext& ctx, const std::string& prefix,
                        const service::ServiceStats& stats) {
  const TimeBreakdown& time = stats.report.time;
  ctx.metric(prefix + "stage.data", time.data, "s");
  ctx.metric(prefix + "stage.opt", time.opt, "s");
  ctx.metric(prefix + "stage.bvh", time.bvh, "s");
  ctx.metric(prefix + "stage.fs", time.first_search, "s");
  ctx.metric(prefix + "stage.search", time.search, "s");
  ctx.metric(prefix + "stage.launches", static_cast<double>(stats.batches));
}

}  // namespace

RTNN_BENCH_CASE(serving_sharded, "serving.sharded.100k",
                "Sharded cloud vs whole cloud — scatter-gather through the service",
                "spatial shards trade a routed scatter-gather per query batch "
                "for smaller per-shard indexes and tighter traversal",
                "absolute 100k points; client count = --threads") {
  const int clients = std::max(1, num_threads());
  const data::PointCloud cloud = data::uniform_box(
      kServingPoints, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 821));
  const SearchParams params = serving_params(cloud.size());
  const auto total_queries = static_cast<double>(
      bench_traffic::total_coherent_queries(cloud, clients, kRequestsPerClient));

  // The identical coherent closed-loop schedule drives both tenants.
  auto closed_loop = [&](service::SearchService& service,
                         const service::CloudHandle& handle) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          (void)service.query(handle, coherent_request_queries(cloud, c, r), params);
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  // Whole cloud: one index serves every query (shard_threshold 0).
  service::SearchService flat_service;
  const service::CloudHandle flat = flat_service.register_cloud("flat", cloud);
  const double flat_s = ctx.time("flat.100k", [&] { closed_loop(flat_service, flat); },
                                 {.work_items = total_queries});

  // Sharded: ~8 Morton-contiguous shards behind the same service API.
  service::CloudConfig sharded_config;
  sharded_config.shard_threshold = kServingPoints / 8;
  const std::uint32_t shards = plan_shard_count(
      kServingPoints, sharded_config.shard_threshold, sharded_config.max_shards);
  service::SearchService sharded_service;
  const service::CloudHandle sharded =
      sharded_service.register_cloud("sharded", cloud, sharded_config);
  const double sharded_s =
      ctx.time("sharded.100k", [&] { closed_loop(sharded_service, sharded); },
               {.work_items = total_queries});

  const double speedup = flat_s / sharded_s;
  ctx.metric("clients", clients);
  ctx.metric("shards", shards);
  ctx.metric("speedup.100k", speedup, "x");
  emit_stage_metrics(ctx, "flat.", flat_service.stats());
  emit_stage_metrics(ctx, "sharded.", sharded_service.stats());
  std::printf(
      "%8s %9s %8s  %14s %14s %9s\n%8zu %9d %8u  %14.5f %14.5f %8.2fx\n",
      "points", "clients", "shards", "flat[s]", "sharded[s]", "speedup",
      kServingPoints, clients, shards, flat_s, sharded_s, speedup);
}

RTNN_BENCH_CASE(serving_multi_tenant, "serving.multi_tenant.100k",
                "Multi-tenant overload — admission shedding vs unbounded queueing",
                "arrivals far past capacity: an unbounded queue grows for the "
                "whole run (p99 = backlog), while a per-tenant queue-depth cap "
                "sheds the excess at submit() and holds the admitted p99 flat",
                "absolute 4x25k points; single submitter at a fixed rate") {
  constexpr int kTenants = 4;
  constexpr int kRequests = 48;
  constexpr std::size_t kTenantPoints = kServingPoints / kTenants;

  std::vector<data::PointCloud> clouds;
  for (int t = 0; t < kTenants; ++t) {
    clouds.push_back(data::uniform_box(kTenantPoints, {{0, 0, 0}, {1, 1, 1}},
                                       bench::mix_seed(ctx.seed(), 831 + t)));
  }
  const SearchParams params = serving_params(kTenantPoints);

  /// One open-loop overload run: round-robin submits across the tenants
  /// at `period_s`, FIFO collector stamps completions; tickets then sort
  /// into served latencies vs shed count.
  struct OverloadResult {
    std::vector<double> served;  // ascending latencies of served requests
    std::size_t shed = 0;
  };
  auto overload_run = [&](service::SearchService& service,
                          const std::vector<service::CloudHandle>& handles,
                          double period_s) {
    OverloadResult out;
    std::vector<service::SearchService::Ticket> tickets(kRequests);
    std::vector<Timer> stamps(kRequests);
    std::vector<double> latencies(kRequests, 0.0);
    std::atomic<int> submitted{0};
    std::thread collector([&] {
      for (int r = 0; r < kRequests; ++r) {
        while (submitted.load(std::memory_order_acquire) <= r) {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
        tickets[static_cast<std::size_t>(r)].wait();
        latencies[static_cast<std::size_t>(r)] =
            stamps[static_cast<std::size_t>(r)].elapsed();
      }
    });
    for (int r = 0; r < kRequests; ++r) {
      const auto t = static_cast<std::size_t>(r % kTenants);
      Timer arrival;
      stamps[static_cast<std::size_t>(r)].reset();
      tickets[static_cast<std::size_t>(r)] =
          service.submit(handles[t], request_queries(clouds[t], r % 3, r), params);
      submitted.fetch_add(1, std::memory_order_release);
      const double remaining = period_s - arrival.elapsed();
      if (remaining > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
      }
    }
    collector.join();
    for (int r = 0; r < kRequests; ++r) {
      try {
        (void)tickets[static_cast<std::size_t>(r)].get();
        out.served.push_back(latencies[static_cast<std::size_t>(r)]);
      } catch (const service::ServiceError&) {
        ++out.shed;  // rejected at the door, never queued
      }
    }
    std::sort(out.served.begin(), out.served.end());
    return out;
  };

  auto register_tenants = [&](service::SearchService& service,
                              const service::CloudConfig& config) {
    std::vector<service::CloudHandle> handles;
    for (int t = 0; t < kTenants; ++t) {
      handles.push_back(
          service.register_cloud("tenant" + std::to_string(t), clouds[t], config));
    }
    return handles;
  };

  // Calibrate overload off this machine: mean service time of a short
  // solo burst (first query excluded — it pays the one-time index build),
  // then arrivals at 8x that rate. Coalescing makes the *batched*
  // capacity a few times the solo rate, so 8x lands well past it —
  // without admission the backlog grows for the whole run.
  service::SearchService queued_service;
  const std::vector<service::CloudHandle> queued_handles =
      register_tenants(queued_service, {});
  (void)queued_service.query(queued_handles[0], request_queries(clouds[0], 2, 0), params);
  Timer calibrate;
  for (int r = 0; r < 8; ++r) {
    (void)queued_service.query(queued_handles[0], request_queries(clouds[0], 1, r),
                               params);
  }
  const double period_s = calibrate.elapsed() / 8.0 / 8.0;

  // Admission OFF: every request queues; the backlog grows for the whole
  // run and the tail latency with it.
  OverloadResult queued;
  (void)ctx.time(
      "queued.4x25k",
      [&] { queued = overload_run(queued_service, queued_handles, period_s); },
      {.work_items = static_cast<double>(kRequests)});

  // Admission ON: each tenant caps its pending requests; the excess is
  // shed at submit() with RejectReason::kAdmission.
  service::CloudConfig admitted_config;
  admitted_config.admission.max_queue_depth = 2;
  service::SearchService admitted_service;
  const std::vector<service::CloudHandle> admitted_handles =
      register_tenants(admitted_service, admitted_config);
  OverloadResult admitted;
  (void)ctx.time(
      "admitted.4x25k",
      [&] { admitted = overload_run(admitted_service, admitted_handles, period_s); },
      {.work_items = static_cast<double>(kRequests)});

  const double queued_p99 = percentile(queued.served, 0.99);
  const double admitted_p99 = percentile(admitted.served, 0.99);
  const double shed_share =
      static_cast<double>(admitted.shed) / static_cast<double>(kRequests);
  ctx.metric("arrival_period_ms", period_s * 1e3, "ms");
  ctx.metric("queued_p50_ms", percentile(queued.served, 0.50) * 1e3, "ms");
  ctx.metric("queued_p99_ms", queued_p99 * 1e3, "ms");
  ctx.metric("admitted_p50_ms", percentile(admitted.served, 0.50) * 1e3, "ms");
  ctx.metric("admitted_p99_ms", admitted_p99 * 1e3, "ms");
  ctx.metric("shed_share", shed_share);
  ctx.metric("p99_ratio", admitted_p99 > 0.0 ? queued_p99 / admitted_p99 : 0.0, "x");
  std::printf(
      "%10s %14s %14s %14s %9s\n%9.3fms %12.3fms %12.3fms %13.1f%% %8.1fx\n",
      "period", "queued p99", "admitted p99", "shed", "p99 ratio", period_s * 1e3,
      queued_p99 * 1e3, admitted_p99 * 1e3, 100.0 * shed_share,
      admitted_p99 > 0.0 ? queued_p99 / admitted_p99 : 0.0);
}
