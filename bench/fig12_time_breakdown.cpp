// Figure 12: end-to-end time distribution of RTNN across the five phases
// {Data, Opt, BVH, FS, Search}, for KNN (12a) and range search (12b).
//
// Paper: Search dominates on large inputs (e.g. 88.5% for KITTI-12M KNN,
// 63.5% for range); small inputs are dominated by non-search phases; the
// two NBody inputs spend >50% on Opt+BVH because their non-uniform density
// yields many partitions and BVH builds.
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig12, "fig12",
                "Figure 12 — RTNN time distribution {Data, Opt, BVH, FS, Search} [%]",
                "Search dominates large inputs; NBody spends >50% in Opt+BVH "
                "(non-uniform density -> many partitions)",
                "FS is negligible everywhere, as in the paper") {
  for (const SearchMode mode : {SearchMode::kKnn, SearchMode::kRange}) {
    const char* mode_name = mode == SearchMode::kKnn ? "knn" : "range";
    std::printf("\n--- %s search ---\n", mode == SearchMode::kKnn ? "KNN" : "Range");
    std::printf("%-12s %6s %6s %6s %6s %6s   %10s %6s\n", "dataset", "Data", "Opt",
                "BVH", "FS", "Search", "total[s]", "#part");
    for (const char* name :
         {"KITTI-1M", "KITTI-6M", "KITTI-12M", "KITTI-25M", "NBody-9M", "NBody-10M",
          "Bunny-360K", "Dragon-3.6M", "Buddha-4.6M"}) {
      bench::BenchDataset ds = bench::paper_dataset(name, ctx.scale(), 16, ctx.seed());
      SearchParams params;
      params.mode = mode;
      params.radius = bench::paper_radius(name, ds);
      params.k = 16;
      params.store_indices = false;
      params.max_grid_cells = std::uint64_t{1} << 24;
      NeighborSearch search;
      search.set_points(ds.points);
      // The sample is the summed phase breakdown of one search() call; the
      // report of the last repeat supplies the (deterministic) breakdown.
      NeighborSearch::Report report;
      ctx.sample(std::string(mode_name) + "." + name,
                 [&] {
                   report = {};
                   search.search(ds.points, params, &report);
                   return report.time.total();
                 },
                 {.work_items = static_cast<double>(ds.points.size())});
      const double total = report.time.total();
      ctx.metric(std::string(mode_name) + "." + name + ".search_share",
                 total > 0 ? 100.0 * report.time.search / total : 0.0, "%");
      ctx.metric(std::string(mode_name) + "." + name + ".partitions",
                 report.num_partitions);
      std::printf("%-12s %s   %10.3f %6u\n", name, report.time.percent_row().c_str(),
                  report.time.total(), report.num_partitions);
    }
  }
  std::puts("\nexpected shape: Search share grows with input size; NBody rows have the");
  std::puts("largest Opt+BVH share; FS is negligible everywhere (as in the paper).");
}
