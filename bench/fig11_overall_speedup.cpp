// Figure 11: overall speedup of RTNN over the four baselines, on all nine
// datasets, for range search and KNN search.
//
// Paper (RTX 2080): geomean speedups — range: 2.2x over PCLOctree, 44.0x
// over cuNSearch; KNN: 3.5x over FRNN, 65.0x over FastRNN. Speedups grow
// with input size; OOM/DNF markers for baselines that failed.
//
// Here: the same baseline classes on the CPU substrate, all driven through
// the engine layer's SearchBackend interface — "octree" (PCLOctree
// analog), "grid" (cuNSearch/FRNN analogs), "fastrnn" (naive RT mapping),
// "rtnn". All timings are end-to-end (set_points + lazy index build +
// search); queries = the points themselves. A baseline is marked DNF when
// it exceeds 200x RTNN's time (the paper used 1000x; ours is tighter to
// keep the suite fast). This is the headline case the CI perf gate tracks.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

namespace {

constexpr std::uint32_t kK = 16;

struct Row {
  std::string dataset;
  double t_rtnn_range, t_octree, t_grid;
  double t_rtnn_knn, t_frnn, t_fastrnn;
  bool fastrnn_dnf = false;
};

/// End-to-end time of one backend on one workload: upload, (re)build the
/// structure, search.
double time_backend(bench::CaseContext& ctx, const std::string& name,
                    engine::SearchBackend& backend, std::span<const Vec3> points,
                    std::span<const Vec3> queries, const SearchParams& params) {
  return ctx.time(name,
                  [&] {
                    backend.set_points(points);
                    backend.search(queries, params);
                  },
                  {.work_items = static_cast<double>(queries.size())});
}

/// One instrumented rtnn run per dataset: per-stage seconds under the
/// `<prefix>.stage.*` names tools/bench_compare.py attributes hotspot
/// movement by, plus the index footprint of the layout actually launched
/// (`index_bytes.*` — the acceptance metric of the compressed wide BVH).
void emit_rtnn_breakdown(bench::CaseContext& ctx, const std::string& prefix,
                         engine::SearchBackend& backend, std::span<const Vec3> points,
                         std::span<const Vec3> queries, const SearchParams& params) {
  engine::SearchBackend::Report report;
  backend.set_points(points);
  backend.search(queries, params, &report);
  ctx.metric(prefix + ".stage.data", report.time.data, "s");
  ctx.metric(prefix + ".stage.opt", report.time.opt, "s");
  ctx.metric(prefix + ".stage.bvh", report.time.bvh, "s");
  ctx.metric(prefix + ".stage.fs", report.time.first_search, "s");
  ctx.metric(prefix + ".stage.search", report.time.search, "s");
  ctx.metric("index_bytes.node." + prefix,
             static_cast<double>(report.index_node_bytes), "B");
  ctx.metric("index_bytes.total." + prefix,
             static_cast<double>(report.index_total_bytes), "B");
}

}  // namespace

RTNN_BENCH_CASE(fig11, "fig11",
                "Figure 11 — RTNN speedup over baselines (range + KNN, 9 datasets)",
                "geomean range: 2.2x vs PCLOctree, 44x vs cuNSearch; "
                "KNN: 3.5x vs FRNN, 65x vs FastRNN; speedups grow with input size",
                "FastRNN times extrapolated from a 5% query probe; DNF = >200x RTNN") {
  const auto rtnn_backend = engine::make_backend("rtnn");
  const auto octree_backend = engine::make_backend("octree");
  const auto grid_backend = engine::make_backend("grid");
  const auto fastrnn_backend = engine::make_backend("fastrnn");

  std::vector<Row> rows;
  for (const char* name :
       {"KITTI-1M", "KITTI-6M", "KITTI-12M", "KITTI-25M", "NBody-9M", "NBody-10M",
        "Bunny-360K", "Dragon-3.6M", "Buddha-4.6M"}) {
    bench::BenchDataset ds = bench::paper_dataset(name, ctx.scale(), kK, ctx.seed());
    const auto& points = ds.points;
    Row row;
    row.dataset = name;

    SearchParams params;
    params.radius = ds.radius;
    params.k = kK;
    params.store_indices = false;

    // --- Range search ---
    params.mode = SearchMode::kRange;
    row.t_rtnn_range = time_backend(ctx, std::string("range.rtnn.") + name,
                                    *rtnn_backend, points, points, params);
    row.t_octree = time_backend(ctx, std::string("range.octree.") + name,
                                *octree_backend, points, points, params);
    row.t_grid = time_backend(ctx, std::string("range.grid.") + name, *grid_backend,
                              points, points, params);

    // --- KNN search ---
    params.mode = SearchMode::kKnn;
    row.t_rtnn_knn = time_backend(ctx, std::string("knn.rtnn.") + name, *rtnn_backend,
                                  points, points, params);
    emit_rtnn_breakdown(ctx, std::string("knn.rtnn.") + name, *rtnn_backend, points,
                        points, params);
    row.t_frnn = time_backend(ctx, std::string("knn.frnn.") + name, *grid_backend,
                              points, points, params);
    // FastRNN (naive RT KNN) can be orders of magnitude slower; probe it
    // on a query subsample and extrapolate, marking DNF past the cap.
    {
      const std::size_t probe = std::max<std::size_t>(points.size() / 20, 1000);
      const std::span<const Vec3> probe_queries(points.data(),
                                                std::min(probe, points.size()));
      const double t_probe =
          time_backend(ctx, std::string("knn.fastrnn_probe.") + name, *fastrnn_backend,
                       points, probe_queries, params);
      row.t_fastrnn =
          t_probe * static_cast<double>(points.size()) /
          static_cast<double>(probe_queries.size());
      row.fastrnn_dnf = row.t_fastrnn > 200.0 * row.t_rtnn_knn;
    }
    rows.push_back(row);
    std::fprintf(stderr, "[fig11] %s done\n", name);
  }

  std::printf("\n--- Range search: speedup of RTNN over each baseline ---\n");
  std::printf("%-12s %10s %14s %14s\n", "dataset", "rtnn[s]", "PCLOctree", "cuNSearch");
  std::vector<double> su_octree, su_grid, su_frnn, su_fastrnn;
  for (const Row& r : rows) {
    su_octree.push_back(r.t_octree / r.t_rtnn_range);
    su_grid.push_back(r.t_grid / r.t_rtnn_range);
    ctx.metric("speedup.range.octree." + r.dataset, su_octree.back(), "x");
    ctx.metric("speedup.range.grid." + r.dataset, su_grid.back(), "x");
    std::printf("%-12s %10.3f %13.1fx %13.1fx\n", r.dataset.c_str(), r.t_rtnn_range,
                su_octree.back(), su_grid.back());
  }
  ctx.metric("geomean.range.octree", bench::geomean(su_octree), "x");
  ctx.metric("geomean.range.grid", bench::geomean(su_grid), "x");
  std::printf("%-12s %10s %13.1fx %13.1fx\n", "geomean", "",
              bench::geomean(su_octree), bench::geomean(su_grid));

  std::printf("\n--- KNN search: speedup of RTNN over each baseline ---\n");
  std::printf("%-12s %10s %14s %14s\n", "dataset", "rtnn[s]", "FRNN", "FastRNN");
  for (const Row& r : rows) {
    su_frnn.push_back(r.t_frnn / r.t_rtnn_knn);
    su_fastrnn.push_back(r.t_fastrnn / r.t_rtnn_knn);
    ctx.metric("speedup.knn.frnn." + r.dataset, su_frnn.back(), "x");
    ctx.metric("speedup.knn.fastrnn." + r.dataset, su_fastrnn.back(), "x");
    char fast_buf[32];
    std::snprintf(fast_buf, sizeof(fast_buf), "%12.1fx%s", su_fastrnn.back(),
                  r.fastrnn_dnf ? " DNF" : "");
    std::printf("%-12s %10.3f %13.1fx %s\n", r.dataset.c_str(), r.t_rtnn_knn,
                su_frnn.back(), fast_buf);
  }
  ctx.metric("geomean.knn.frnn", bench::geomean(su_frnn), "x");
  ctx.metric("geomean.knn.fastrnn", bench::geomean(su_fastrnn), "x");
  std::printf("%-12s %10s %13.1fx %12.1fx\n", "geomean", "", bench::geomean(su_frnn),
              bench::geomean(su_fastrnn));
  std::puts("\nexpected shape: RTNN ahead of tree baselines by small factors and of");
  std::puts("grid/naive-RT baselines by large factors; gap grows with dataset size.");
  std::puts("(FastRNN times extrapolated from a 5% query probe; DNF = >200x RTNN.)");
}
