// Figure 5: search time vs number of queries, raster-scan-ordered vs
// randomly-ordered rays.
//
// Paper: "Searching with arbitrarily-ordered rays is consistently ~5 times
// slower compared to searching with coherent rays" (RTX 2080Ti, KITTI
// points, 0.27M-27M queries).
//
// Here: LiDAR points, queries assigned uniformly to grid cells and emitted
// in raster order vs shuffled. Only the Search phase is timed (the BVH is
// identical for both orders), min over the runner's repeats. Both engines
// are reported: the independent-traversal engine shows the effect through
// the CPU memory hierarchy; the warp-lockstep SIMT engine adds the
// control-flow divergence penalty the RT hardware pays.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig05, "fig05",
                "Figure 5 — ray coherence: ordered vs random query order",
                "random order ~4-5x slower than raster order, across 0.27M-27M queries",
                "SIMT wall-clock and gpu-cost ratios > 1; the independent CPU engine "
                "shows little of the gap (it comes from divergence)") {
  // This characterization needs a working set larger than the CPU caches;
  // use the biggest KITTI configuration.
  bench::BenchDataset ds = bench::paper_dataset("KITTI-25M", ctx.scale(), 64, ctx.seed());

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = ds.radius;
  params.k = 64;
  params.opts = OptimizationFlags::none();  // direct query-to-ray mapping
  params.store_indices = false;

  NeighborSearch search;
  search.set_points(ds.points);

  // Each sample is the Search-phase time of one full search() call; the
  // warp-substep counters are deterministic per input, so reading them
  // from the last repeat is exact.
  std::uint64_t substeps = 0;
  auto run = [&](const data::PointCloud& queries, bool simt, const std::string& name) {
    params.simt_launches = simt;
    return ctx.sample(name,
                      [&] {
                        NeighborSearch::Report report;
                        search.search(queries, params, &report);
                        substeps = report.stats.warp_substeps;
                        return report.time.search;
                      },
                      {.work_items = static_cast<double>(queries.size())});
  };

  std::printf("%12s %12s %12s %7s %12s %12s %7s %9s\n", "queries", "raster[s]",
              "random[s]", "ratio", "simt-ra[s]", "simt-rnd[s]", "ratio",
              "gpu-cost");
  const Aabb box = data::bounds(ds.points);
  const struct { double mq; const char* label; } sweeps[] = {
      {0.27, "0.27M"}, {0.75, "0.75M"}, {1.5, "1.5M"}, {2.7, "2.7M"}};
  for (const auto& sweep : sweeps) {
    const auto res =
        static_cast<std::uint32_t>(std::cbrt(sweep.mq * 1e6 * ctx.scale() * 20.0));
    data::GridQueryParams gq;
    gq.resolution = res;
    gq.box = box;
    gq.seed = bench::mix_seed(ctx.seed(), 5);
    data::PointCloud raster = data::grid_queries_raster(gq);
    data::PointCloud random = raster;
    data::shuffle(random, bench::mix_seed(ctx.seed(), 6));

    const std::string sz = sweep.label;
    const double ind_raster = run(raster, false, "ind.raster." + sz);
    const double ind_random = run(random, false, "ind.random." + sz);
    const double simt_raster = run(raster, true, "simt.raster." + sz);
    const std::uint64_t raster_substeps = substeps;
    const double simt_random = run(random, true, "simt.random." + sz);
    // "gpu-cost" = ratio of serialized warp sub-steps, the substrate's
    // cycle-count analog of the hardware's SIMT execution time.
    const double gpu_cost =
        static_cast<double>(substeps) / static_cast<double>(raster_substeps);
    ctx.metric("gpu_cost." + sz, gpu_cost, "x");
    ctx.metric("simt_ratio." + sz, simt_random / simt_raster, "x");
    std::printf("%12zu %12.4f %12.4f %7.2f %12.4f %12.4f %7.2f %8.2fx\n",
                raster.size(), ind_raster, ind_random, ind_random / ind_raster,
                simt_raster, simt_random, simt_random / simt_raster, gpu_cost);
  }
  std::puts("\nexpected shape: SIMT wall-clock and gpu-cost ratios > 1 (the paper's");
  std::puts("4-5x gap is a SIMT-hardware effect; the independent CPU engine shows");
  std::puts("little of it, which is itself evidence the gap comes from divergence).");
}
