// Figure 5: search time vs number of queries, raster-scan-ordered vs
// randomly-ordered rays.
//
// Paper: "Searching with arbitrarily-ordered rays is consistently ~5 times
// slower compared to searching with coherent rays" (RTX 2080Ti, KITTI
// points, 0.27M-27M queries).
//
// Here: LiDAR points, queries assigned uniformly to grid cells and emitted
// in raster order vs shuffled. Only the Search phase is timed (the BVH is
// identical for both orders), best of two runs. Both engines are reported:
// the independent-traversal engine shows the effect through the CPU memory
// hierarchy; the warp-lockstep SIMT engine adds the control-flow
// divergence penalty the RT hardware pays.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

int main() {
  const double scale = bench::bench_scale();
  bench::print_figure_header(
      "Figure 5 — ray coherence: ordered vs random query order",
      "random order ~4-5x slower than raster order, across 0.27M-27M queries");

  // This characterization needs a working set larger than the CPU caches;
  // use the biggest KITTI configuration.
  bench::BenchDataset ds = bench::paper_dataset("KITTI-25M", scale, 64);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = ds.radius;
  params.k = 64;
  params.opts = OptimizationFlags::none();  // direct query-to-ray mapping
  params.store_indices = false;

  NeighborSearch search;
  search.set_points(ds.points);

  struct Sample {
    double seconds = 1e30;
    std::uint64_t substeps = 0;
  };
  auto run = [&](const data::PointCloud& queries, bool simt) {
    params.simt_launches = simt;
    Sample best;
    for (int rep = 0; rep < 3; ++rep) {
      NeighborSearch::Report report;
      search.search(queries, params, &report);
      if (report.time.search < best.seconds) {
        best.seconds = report.time.search;
        best.substeps = report.stats.warp_substeps;
      }
    }
    return best;
  };

  std::printf("%12s %12s %12s %7s %12s %12s %7s %9s\n", "queries", "raster[s]",
              "random[s]", "ratio", "simt-ra[s]", "simt-rnd[s]", "ratio",
              "gpu-cost");
  const Aabb box = data::bounds(ds.points);
  for (const double mq : {0.27, 0.75, 1.5, 2.7}) {
    const auto res = static_cast<std::uint32_t>(std::cbrt(mq * 1e6 * scale * 20.0));
    data::GridQueryParams gq;
    gq.resolution = res;
    gq.box = box;
    gq.seed = 5;
    data::PointCloud raster = data::grid_queries_raster(gq);
    data::PointCloud random = raster;
    data::shuffle(random, 6);

    const Sample ind_raster = run(raster, false);
    const Sample ind_random = run(random, false);
    const Sample simt_raster = run(raster, true);
    const Sample simt_random = run(random, true);
    // "gpu-cost" = ratio of serialized warp sub-steps, the substrate's
    // cycle-count analog of the hardware's SIMT execution time.
    std::printf("%12zu %12.4f %12.4f %7.2f %12.4f %12.4f %7.2f %8.2fx\n",
                raster.size(), ind_raster.seconds, ind_random.seconds,
                ind_random.seconds / ind_raster.seconds, simt_raster.seconds,
                simt_random.seconds, simt_random.seconds / simt_raster.seconds,
                static_cast<double>(simt_random.substeps) /
                    static_cast<double>(simt_raster.substeps));
  }
  std::puts("\nexpected shape: SIMT wall-clock and gpu-cost ratios > 1 (the paper's");
  std::puts("4-5x gap is a SIMT-hardware effect; the independent CPU engine shows");
  std::puts("little of it, which is itself evidence the gap comes from divergence).");
  return 0;
}
