// Micro suite for the substrate primitives: BVH build and traversal,
// uniform grid, octree, radix sort, Morton encoding, KNN heap. These are
// the per-operation costs behind every figure harness.
//
// Formerly a Google Benchmark binary; now registered cases on the native
// runner, so the whole suite ships in one rtnn_bench binary with no
// external benchmark dependency. Sizes scale with the runner's --scale so
// the CI smoke run stays fast (scale 0.02 reproduces the historical
// 10k/100k/1M arguments).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/flat_knn.hpp"
#include "core/morton.hpp"
#include "core/rng.hpp"
#include "core/sort.hpp"
#include "datasets/uniform.hpp"
#include "optix/optix.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/traversal.hpp"
#include "rtcore/wide_bvh.hpp"

using namespace rtnn;

namespace {

data::PointCloud cloud(std::size_t n, std::uint64_t seed) {
  return data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(seed, 12345));
}

std::vector<Aabb> point_aabbs(const data::PointCloud& points, float width) {
  std::vector<Aabb> aabbs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    aabbs[i] = Aabb::cube(points[i], width);
  }
  return aabbs;
}

struct NullProgram {
  std::uint64_t sink = 0;
  rt::TraceAction intersect(std::uint32_t, std::uint32_t prim) {
    sink += prim;
    return rt::TraceAction::kContinue;
  }
};

void print_row(const char* op, std::size_t n, double seconds) {
  std::printf("%-24s %10zu %12.3f ms %12.1f ns/item\n", op, n, 1e3 * seconds,
              n ? 1e9 * seconds / static_cast<double>(n) : 0.0);
}

}  // namespace

RTNN_BENCH_CASE(micro_core, "micro.core",
                "Micro — substrate primitives (BVH, grid, octree, sort, Morton, heap)",
                "per-operation costs behind every figure harness",
                "sizes scale with --scale; 0.02 reproduces the historical "
                "10k/100k/1M arguments") {
  // At the default scale of 0.02 the multiplier is 1.0.
  const double mult = ctx.scale() * 50.0;
  auto sz = [&](double n) {
    return static_cast<std::size_t>(std::max(1000.0, n * mult));
  };
  std::printf("%-24s %10s %15s %20s\n", "op", "items", "time(min)", "per item");

  // --- BVH build ---
  for (const double base : {10e3, 100e3, 1000e3}) {
    const std::size_t n = sz(base);
    const auto aabbs = point_aabbs(cloud(n, ctx.seed()), 0.02f);
    const std::string label = "bvh_build." + std::to_string(static_cast<int>(base / 1e3)) + "k";
    const double s = ctx.time(label,
                              [&] {
                                rt::Bvh bvh;
                                bvh.build(aabbs);
                              },
                              {.work_items = static_cast<double>(n)});
    print_row(label.c_str(), n, s);
  }

  // --- Traversal: independent (wide FP32 + compressed + binary) and
  // warp-lockstep ---
  // `traversal.*` measures the FP32 8-wide SoA path;
  // `traversal_compressed.*` the quantized 80-byte node layout (the
  // production default — same candidate sets, ~3.2x smaller nodes);
  // `traversal_binary.*` keeps the binary walk for reference (it is also
  // what the warp-lockstep simulation pops node by node).
  for (const double base : {10e3, 100e3}) {
    const std::size_t n = sz(base);
    const auto points = cloud(n, ctx.seed());
    rt::Bvh bvh;
    bvh.build(point_aabbs(points, 0.03f));
    rt::WideBvh wide;
    wide.build(bvh);
    std::vector<Ray> rays;
    rays.reserve(points.size());
    for (const Vec3& p : points) rays.push_back(Ray::short_ray(p));
    NullProgram program;
    const std::string suffix = std::to_string(static_cast<int>(base / 1e3)) + "k";
    const double s_wide = ctx.time("traversal." + suffix,
                                   [&] { rt::trace(wide, rays, program); },
                                   {.work_items = static_cast<double>(n)});
    print_row(("traversal." + suffix).c_str(), n, s_wide);
    rt::TraceConfig compressed;
    compressed.use_compressed = true;
    const double s_comp = ctx.time("traversal_compressed." + suffix,
                                   [&] { rt::trace(wide, rays, program, compressed); },
                                   {.work_items = static_cast<double>(n)});
    print_row(("traversal_compressed." + suffix).c_str(), n, s_comp);
    const double s_bin = ctx.time("traversal_binary." + suffix,
                                  [&] { rt::trace(bvh, rays, program); },
                                  {.work_items = static_cast<double>(n)});
    print_row(("traversal_binary." + suffix).c_str(), n, s_bin);
    rt::TraceConfig config;
    config.model = rt::ExecutionModel::kWarpLockstep;
    const double s_simt = ctx.time("traversal_simt." + suffix,
                                   [&] { rt::trace(bvh, rays, program, config); },
                                   {.work_items = static_cast<double>(n)});
    print_row(("traversal_simt." + suffix).c_str(), n, s_simt);

    // Index footprint of each wide layout, and the modeled cache-miss
    // delta of walking the same rays at each layout's true byte size.
    const rt::WideBvhStats fp32_stats = wide.stats();
    const rt::WideBvhStats comp_stats = wide.compressed_stats();
    ctx.metric("index_bytes.wide." + suffix,
               static_cast<double>(fp32_stats.total_index_bytes), "B");
    ctx.metric("index_bytes.compressed." + suffix,
               static_cast<double>(comp_stats.total_index_bytes), "B");
    ctx.metric("index_node_bytes_ratio." + suffix,
               static_cast<double>(fp32_stats.node_bytes) /
                   static_cast<double>(comp_stats.node_bytes),
               "x");
    rt::TraceConfig sim;
    sim.parallel = false;
    sim.simulate_caches = true;
    const auto misses = [](const rt::LaunchStats& s) {
      return static_cast<double>((s.l1.accesses - s.l1.hits) +
                                 (s.l2.accesses - s.l2.hits));
    };
    sim.use_compressed = false;
    const double fp32_misses = misses(rt::trace(wide, rays, program, sim));
    sim.use_compressed = true;
    const double comp_misses = misses(rt::trace(wide, rays, program, sim));
    ctx.metric("modeled_misses.wide." + suffix, fp32_misses);
    ctx.metric("modeled_misses.compressed." + suffix, comp_misses);
    if (fp32_misses > 0.0) {
      ctx.metric("modeled_miss_reduction." + suffix,
                 100.0 * (1.0 - comp_misses / fp32_misses), "%");
    }
  }

  // --- Wide-BVH collapse (amortized into every accel build) ---
  {
    const std::size_t n = sz(1000e3);
    rt::Bvh bvh;
    bvh.build(point_aabbs(cloud(n, ctx.seed()), 0.02f));
    const double s = ctx.time("wide_collapse.1000k",
                              [&] {
                                rt::WideBvh wide;
                                wide.build(bvh);
                              },
                              {.work_items = static_cast<double>(n)});
    print_row("wide_collapse.1000k", n, s);
  }

  // --- Uniform grid ---
  for (const double base : {100e3, 1000e3}) {
    const std::size_t n = sz(base);
    const auto points = cloud(n, ctx.seed());
    const std::string suffix = std::to_string(static_cast<int>(base / 1e3)) + "k";
    const double s = ctx.time("grid_build." + suffix,
                              [&] {
                                baselines::GridRangeSearch grid;
                                grid.build(points, 0.02f);
                              },
                              {.work_items = static_cast<double>(n)});
    print_row(("grid_build." + suffix).c_str(), n, s);
  }
  {
    const std::size_t n = sz(100e3);
    const auto points = cloud(n, ctx.seed());
    baselines::GridRangeSearch grid;
    grid.build(points, 0.02f);
    const double s = ctx.time("grid_range_query.100k",
                              [&] { grid.search(points, 16); },
                              {.work_items = static_cast<double>(n)});
    print_row("grid_range_query.100k", n, s);
  }

  // --- Octree ---
  for (const double base : {100e3, 1000e3}) {
    const std::size_t n = sz(base);
    const auto points = cloud(n, ctx.seed());
    const std::string suffix = std::to_string(static_cast<int>(base / 1e3)) + "k";
    const double s = ctx.time("octree_build." + suffix,
                              [&] {
                                baselines::Octree octree;
                                octree.build(points);
                              },
                              {.work_items = static_cast<double>(n)});
    print_row(("octree_build." + suffix).c_str(), n, s);
  }
  {
    const std::size_t n = sz(100e3);
    const auto points = cloud(n, ctx.seed());
    baselines::Octree octree;
    octree.build(points);
    const double s = ctx.time("octree_knn_query.100k",
                              [&] { octree.knn_search(points, 0.05f, 8); },
                              {.work_items = static_cast<double>(n)});
    print_row("octree_knn_query.100k", n, s);
  }

  // --- Radix sort (key-value pairs) ---
  for (const double base : {100e3, 1000e3}) {
    const std::size_t n = sz(base);
    Pcg32 rng(bench::mix_seed(ctx.seed(), 7));
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = rng.next_u64();
    const std::string suffix = std::to_string(static_cast<int>(base / 1e3)) + "k";
    const double s = ctx.time("radix_sort_pairs." + suffix,
                              [&] {
                                auto k = keys;
                                std::vector<std::uint32_t> v(n);
                                std::iota(v.begin(), v.end(), 0u);
                                radix_sort_pairs(k, v);
                              },
                              {.work_items = static_cast<double>(n)});
    print_row(("radix_sort_pairs." + suffix).c_str(), n, s);
  }

  // --- Morton encoding ---
  {
    const std::size_t n = sz(100e3);
    const auto points = cloud(n, ctx.seed());
    const Aabb bounds{{0, 0, 0}, {1, 1, 1}};
    volatile std::uint64_t sink = 0;
    const double s = ctx.time("morton63.100k",
                              [&] {
                                std::uint64_t sum = 0;
                                for (const Vec3& p : points) sum += morton3d_63(p, bounds);
                                sink = sum;
                              },
                              {.work_items = static_cast<double>(n)});
    (void)sink;
    print_row("morton63.100k", n, s);
  }

  // --- FlatKnnHeaps push ---
  {
    Pcg32 rng(bench::mix_seed(ctx.seed(), 9));
    const std::size_t heaps_n = 1000;
    std::vector<float> dists(sz(100e3));
    for (auto& d : dists) d = rng.next_float();
    volatile float sink = 0.0f;  // keeps the fully-inline push loop observable
    const double s = ctx.time("flat_knn_heap_push.100k",
                              [&] {
                                FlatKnnHeaps heaps(heaps_n, 16);
                                for (std::size_t i = 0; i < dists.size(); ++i) {
                                  heaps.push(i % heaps_n, dists[i],
                                             static_cast<std::uint32_t>(i));
                                }
                                sink = heaps.worst_dist2(0);
                              },
                              {.work_items = static_cast<double>(dists.size())});
    (void)sink;
    print_row("flat_knn_heap_push.100k", dists.size(), s);
  }

  // --- Accel build leaf-size ablation ---
  {
    const std::size_t n = sz(200e3);
    const auto aabbs = point_aabbs(cloud(n, ctx.seed()), 0.02f);
    const ox::Context ctx_ox;
    for (const std::uint32_t leaf : {1u, 4u}) {
      ox::AccelBuildOptions options;
      options.leaf_size = leaf;
      const std::string label = "accel_build.leaf" + std::to_string(leaf);
      const double s = ctx.time(label, [&] { ctx_ox.build_accel(aabbs, options); },
                                {.work_items = static_cast<double>(n)});
      print_row(label.c_str(), n, s);
    }
  }
}
