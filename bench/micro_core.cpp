// google-benchmark micro suite for the substrate primitives: BVH build and
// traversal, uniform grid, octree, radix sort, Morton encoding, KNN heap.
// These are the per-operation costs behind every figure harness.
#include <benchmark/benchmark.h>

#include <numeric>

#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "core/flat_knn.hpp"
#include "core/morton.hpp"
#include "core/rng.hpp"
#include "core/sort.hpp"
#include "datasets/uniform.hpp"
#include "optix/optix.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/traversal.hpp"

namespace {

using namespace rtnn;

data::PointCloud cloud(std::size_t n) {
  return data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, 12345);
}

std::vector<Aabb> point_aabbs(const data::PointCloud& points, float width) {
  std::vector<Aabb> aabbs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    aabbs[i] = Aabb::cube(points[i], width);
  }
  return aabbs;
}

void BM_BvhBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto aabbs = point_aabbs(cloud(n), 0.02f);
  for (auto _ : state) {
    rt::Bvh bvh;
    bvh.build(aabbs);
    benchmark::DoNotOptimize(bvh.nodes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BvhBuild)->Arg(10'000)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

struct NullProgram {
  std::uint64_t sink = 0;
  rt::TraceAction intersect(std::uint32_t, std::uint32_t prim) {
    sink += prim;
    return rt::TraceAction::kContinue;
  }
};

void BM_Traversal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = cloud(n);
  const auto aabbs = point_aabbs(points, 0.03f);
  rt::Bvh bvh;
  bvh.build(aabbs);
  std::vector<Ray> rays;
  rays.reserve(points.size());
  for (const Vec3& p : points) rays.push_back(Ray::short_ray(p));
  NullProgram program;
  for (auto _ : state) {
    const auto stats = rt::trace(bvh, rays, program);
    benchmark::DoNotOptimize(stats.is_calls);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Traversal)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_TraversalSimt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = cloud(n);
  rt::Bvh bvh;
  bvh.build(point_aabbs(points, 0.03f));
  std::vector<Ray> rays;
  for (const Vec3& p : points) rays.push_back(Ray::short_ray(p));
  NullProgram program;
  rt::TraceConfig config;
  config.model = rt::ExecutionModel::kWarpLockstep;
  for (auto _ : state) {
    const auto stats = rt::trace(bvh, rays, program, config);
    benchmark::DoNotOptimize(stats.warp_substeps);
  }
}
BENCHMARK(BM_TraversalSimt)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_GridBuild(benchmark::State& state) {
  const auto points = cloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    baselines::GridRangeSearch grid;
    grid.build(points, 0.02f);
    benchmark::DoNotOptimize(grid.grid().point_count());
  }
}
BENCHMARK(BM_GridBuild)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_GridRangeQuery(benchmark::State& state) {
  const auto points = cloud(static_cast<std::size_t>(state.range(0)));
  baselines::GridRangeSearch grid;
  grid.build(points, 0.02f);
  for (auto _ : state) {
    const auto result = grid.search(points, 16);
    benchmark::DoNotOptimize(result.total_neighbors());
  }
}
BENCHMARK(BM_GridRangeQuery)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_OctreeBuild(benchmark::State& state) {
  const auto points = cloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    baselines::Octree octree;
    octree.build(points);
    benchmark::DoNotOptimize(octree.node_count());
  }
}
BENCHMARK(BM_OctreeBuild)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_OctreeKnnQuery(benchmark::State& state) {
  const auto points = cloud(static_cast<std::size_t>(state.range(0)));
  baselines::Octree octree;
  octree.build(points);
  for (auto _ : state) {
    const auto result = octree.knn_search(points, 0.05f, 8);
    benchmark::DoNotOptimize(result.total_neighbors());
  }
}
BENCHMARK(BM_OctreeKnnQuery)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(7);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next_u64();
  for (auto _ : state) {
    auto k = keys;
    std::vector<std::uint32_t> v(n);
    std::iota(v.begin(), v.end(), 0u);
    radix_sort_pairs(k, v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(100'000)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_Morton63(benchmark::State& state) {
  const auto points = cloud(100'000);
  const Aabb bounds{{0, 0, 0}, {1, 1, 1}};
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const Vec3& p : points) sum += morton3d_63(p, bounds);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_Morton63);

void BM_FlatKnnHeapPush(benchmark::State& state) {
  Pcg32 rng(9);
  const std::size_t n = 1000;
  std::vector<float> dists(100'000);
  for (auto& d : dists) d = rng.next_float();
  for (auto _ : state) {
    FlatKnnHeaps heaps(n, 16);
    for (std::size_t i = 0; i < dists.size(); ++i) {
      heaps.push(i % n, dists[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(heaps.worst_dist2(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dists.size()));
}
BENCHMARK(BM_FlatKnnHeapPush);

void BM_AccelBuildLeafSize(benchmark::State& state) {
  const auto points = cloud(200'000);
  const auto aabbs = point_aabbs(points, 0.02f);
  ox::AccelBuildOptions options;
  options.leaf_size = static_cast<std::uint32_t>(state.range(0));
  const ox::Context ctx;
  for (auto _ : state) {
    const auto accel = ctx.build_accel(aabbs, options);
    benchmark::DoNotOptimize(accel.prim_count());
  }
}
BENCHMARK(BM_AccelBuildLeafSize)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
