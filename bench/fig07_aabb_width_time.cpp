// Figure 7: search time vs AABB width.
//
// Paper: with queries fixed, search time rises steeply as the AABB width
// in the BVH grows from 0.3 to 30 (KITTI units = meters): larger AABBs
// enclose each query in more boxes, so rays do more traversal and more IS
// work. This is the observation that motivates query partitioning.
#include <cstdio>

#include "bench_util.hpp"
#include "datasets/point_cloud.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

int main() {
  const double scale = bench::bench_scale();
  bench::print_figure_header("Figure 7 — search time vs AABB width",
                             "time grows superlinearly with AABB width (0.3 to 30 m)");

  bench::BenchDataset ds = bench::paper_dataset("KITTI-6M", scale, 16);
  const data::PointCloud queries =
      data::jittered_queries(ds.points, ds.points.size() / 2, 0.1f, 11);

  std::printf("%12s %14s %16s\n", "width[m]", "search[s]", "IS calls/query");
  for (const float width : {0.3f, 1.0f, 3.0f, 10.0f, 30.0f}) {
    std::vector<Aabb> aabbs(ds.points.size());
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
      aabbs[i] = Aabb::cube(ds.points[i], width);
    }
    const ox::Accel accel = ox::Context{}.build_accel(aabbs);

    NeighborResult result(queries.size(), 0xffffff, /*store_indices=*/false);
    std::vector<std::uint32_t> ids(queries.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    // Unbounded range search at r = width/2: every enclosing AABB triggers
    // the IS shader and the sphere test, exactly the Figure 7/8 setup.
    pipelines::RangePipeline pipeline(ds.points, queries, ids, width / 2.0f, 0xffffff,
                                      /*skip_sphere_test=*/false, result);
    ox::LaunchStats stats;
    const double seconds = bench::time_once([&] {
      stats = ox::launch(accel, pipeline, static_cast<std::uint32_t>(queries.size()));
    });
    std::printf("%12.1f %14.4f %16.2f\n", width, seconds, stats.is_calls_per_ray());
  }
  std::puts("\nexpected shape: monotone increase, superlinear in width (volume ~ w^3).");
  return 0;
}
