// Figure 7: search time vs AABB width.
//
// Paper: with queries fixed, search time rises steeply as the AABB width
// in the BVH grows from 0.3 to 30 (KITTI units = meters): larger AABBs
// enclose each query in more boxes, so rays do more traversal and more IS
// work. This is the observation that motivates query partitioning.
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/point_cloud.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig07, "fig07", "Figure 7 — search time vs AABB width",
                "time grows superlinearly with AABB width (0.3 to 30 m)",
                "monotone increase, superlinear in width (volume ~ w^3)") {
  bench::BenchDataset ds = bench::paper_dataset("KITTI-6M", ctx.scale(), 16, ctx.seed());
  const data::PointCloud queries = data::jittered_queries(
      ds.points, ds.points.size() / 2, 0.1f, bench::mix_seed(ctx.seed(), 11));

  std::printf("%12s %14s %16s\n", "width[m]", "search[s]", "IS calls/query");
  const struct { float width; const char* label; } sweeps[] = {
      {0.3f, "w0.3"}, {1.0f, "w1"}, {3.0f, "w3"}, {10.0f, "w10"}, {30.0f, "w30"}};
  for (const auto& sweep : sweeps) {
    std::vector<Aabb> aabbs(ds.points.size());
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
      aabbs[i] = Aabb::cube(ds.points[i], sweep.width);
    }
    const ox::Accel accel = ox::Context{}.build_accel(aabbs);

    NeighborResult result(queries.size(), 0xffffff, /*store_indices=*/false);
    std::vector<std::uint32_t> ids(queries.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    // Unbounded range search at r = width/2: every enclosing AABB triggers
    // the IS shader and the sphere test, exactly the Figure 7/8 setup.
    pipelines::RangePipeline pipeline(ds.points, queries, ids, sweep.width / 2.0f,
                                      0xffffff, /*skip_sphere_test=*/false, result);
    ox::LaunchStats stats;
    const double seconds = ctx.time(
        std::string("search.") + sweep.label,
        [&] { stats = ox::launch(accel, pipeline, static_cast<std::uint32_t>(queries.size())); },
        {.work_items = static_cast<double>(queries.size())});
    ctx.metric(std::string("is_per_query.") + sweep.label, stats.is_calls_per_ray());
    std::printf("%12.1f %14.4f %16.2f\n", sweep.width, seconds,
                stats.is_calls_per_ray());
  }
  std::puts("\nexpected shape: monotone increase, superlinear in width (volume ~ w^3).");
}
