// rtnn_bench — the unified benchmark CLI over every registered case.
//
//   rtnn_bench --list
//   rtnn_bench --filter 'fig11|micro' --scale 0.002 --repeats 3 --json bench.json
//
// Each case is one paper figure (or micro suite); cases print their
// per-figure console tables and every measurement is additionally
// recorded through the runner into the schema-versioned JSON report
// (src/bench/report.hpp). Exit status is non-zero when any case fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/parallel.hpp"

namespace {

void print_usage() {
  std::puts(
      "usage: rtnn_bench [options]\n"
      "\n"
      "  --list             list registered cases and exit\n"
      "  --filter REGEX     run only cases whose name matches (partial match)\n"
      "  --repeats N        measured invocations per timing (default 3)\n"
      "  --warmup N         discarded invocations per timing (default 1)\n"
      "  --scale S          dataset scale vs the paper (default: RTNN_BENCH_SCALE\n"
      "                     or 0.02)\n"
      "  --seed N           dataset RNG seed offset (default 0 = canonical sets)\n"
      "  --threads N        worker/client thread count (default: RTNN_THREADS or\n"
      "                     the OpenMP default) — the serving.* client sweep knob\n"
      "  --json [PATH]      write the JSON report; PATH defaults to BENCH_<tag>.json\n"
      "  --tag TAG          report tag (default: git sha, else \"local\")\n"
      "  --quiet            suppress per-case headers and tables' footers\n"
      "  --help             this text");
}

bool is_flag(const char* arg) { return std::strncmp(arg, "--", 2) == 0; }

const char* next_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc || is_flag(argv[i + 1])) {
    std::fprintf(stderr, "rtnn_bench: %s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtnn::bench;

  RunnerOptions options;
  options.scale = bench_scale();
  bool list_only = false;
  bool want_json = false;
  std::string json_path;
  std::string tag;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--filter") {
      options.filter = next_value(argc, argv, i, "--filter");
    } else if (arg == "--repeats") {
      options.repeats = std::atoi(next_value(argc, argv, i, "--repeats"));
      if (options.repeats < 1) {
        std::fprintf(stderr, "rtnn_bench: --repeats must be >= 1\n");
        return 2;
      }
    } else if (arg == "--warmup") {
      options.warmup = std::atoi(next_value(argc, argv, i, "--warmup"));
      if (options.warmup < 0) {
        std::fprintf(stderr, "rtnn_bench: --warmup must be >= 0\n");
        return 2;
      }
    } else if (arg == "--scale") {
      options.scale = std::atof(next_value(argc, argv, i, "--scale"));
      if (options.scale <= 0.0) {
        std::fprintf(stderr, "rtnn_bench: --scale must be > 0\n");
        return 2;
      }
    } else if (arg == "--seed") {
      const char* value = next_value(argc, argv, i, "--seed");
      char* end = nullptr;
      options.seed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "rtnn_bench: --seed must be a non-negative integer\n");
        return 2;
      }
    } else if (arg == "--threads") {
      const int n = std::atoi(next_value(argc, argv, i, "--threads"));
      if (n < 1) {
        std::fprintf(stderr, "rtnn_bench: --threads must be >= 1\n");
        return 2;
      }
      rtnn::set_num_threads(n);
    } else if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && !is_flag(argv[i + 1])) json_path = argv[++i];
    } else if (arg == "--tag") {
      tag = next_value(argc, argv, i, "--tag");
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else {
      std::fprintf(stderr, "rtnn_bench: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  // Resolved after --threads / RTNN_THREADS: reports record the worker
  // count they were measured at (bench_compare warns on mismatch).
  options.threads = rtnn::num_threads();

  BenchRegistry& registry = BenchRegistry::instance();
  std::vector<const CaseInfo*> cases;
  try {
    cases = registry.match(options.filter);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtnn_bench: %s\n", e.what());
    return 2;
  }

  if (list_only) {
    for (const CaseInfo* c : cases) {
      std::printf("%-16s %s\n", c->name.c_str(), c->title.c_str());
    }
    return 0;
  }
  if (cases.empty()) {
    std::fprintf(stderr, "rtnn_bench: no cases match filter '%s' (see --list)\n",
                 options.filter.c_str());
    return 2;
  }

  const SuiteResult suite = run_cases(cases, options);

  if (want_json) {
    const Environment env = capture_environment();
    if (tag.empty()) {
      tag = env.git_sha.empty() || env.git_sha == "unknown"
                ? std::string("local")
                : env.git_sha.substr(0, 12);
    }
    if (json_path.empty()) json_path = default_report_path(tag);
    try {
      write_report(json_path, suite, env, tag);
      std::fprintf(stderr, "rtnn_bench: wrote %s (schema v%d, %zu cases)\n",
                   json_path.c_str(), kReportSchemaVersion, suite.results.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rtnn_bench: %s\n", e.what());
      return 1;
    }
  }

  return suite.all_ok() ? 0 : 1;
}
