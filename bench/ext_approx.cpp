// Extension experiment (paper section 8, "Approximate Neighbor Search"):
// the speed/recall trade-off of (a) shrinking AABBs below the exact width
// and (b) eliding the sphere test entirely.
//
// Paper: "Speedups from this approximation would be significant, given
// that Step 2 is much more costly than Step 1"; shrunken AABBs trade
// returned-neighbor count for time (section 3.2.2's sensitivity). Not a
// paper figure — this regenerates the future-work claims quantitatively.
#include <cstdio>

#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

int main() {
  const double scale = bench::bench_scale();
  bench::print_figure_header(
      "Extension — approximate search (paper section 8)",
      "smaller AABBs and an elided sphere test trade recall for speed, "
      "with a sqrt(3)*r error bound for the latter");

  bench::BenchDataset ds = bench::paper_dataset("Buddha-4.6M", scale, 16);
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = ds.radius;
  params.k = 64;
  params.store_indices = false;
  NeighborSearch search;
  search.set_points(ds.points);

  // Exact reference.
  NeighborSearch::Report exact_report;
  const auto exact = search.search(ds.points, params, &exact_report);
  std::uint64_t exact_total = 0;
  for (std::size_t q = 0; q < ds.points.size(); ++q) exact_total += exact.count(q);

  std::printf("%12s %14s %12s %12s\n", "config", "search[s]", "recall", "IS calls");
  std::printf("%12s %14.3f %11.1f%% %12llu\n", "exact", exact_report.time.total(),
              100.0, static_cast<unsigned long long>(exact_report.stats.is_calls));

  for (const float aabb_scale : {0.8f, 0.6f, 0.4f}) {
    params.aabb_scale = aabb_scale;
    params.elide_sphere_test = false;
    NeighborSearch::Report report;
    const auto got = search.search(ds.points, params, &report);
    std::uint64_t total = 0;
    for (std::size_t q = 0; q < ds.points.size(); ++q) total += got.count(q);
    char label[32];
    std::snprintf(label, sizeof(label), "scale=%.1f", aabb_scale);
    std::printf("%12s %14.3f %11.1f%% %12llu\n", label, report.time.total(),
                100.0 * static_cast<double>(total) / static_cast<double>(exact_total),
                static_cast<unsigned long long>(report.stats.is_calls));
  }

  params.aabb_scale = 1.0f;
  params.elide_sphere_test = true;
  NeighborSearch::Report elide_report;
  const auto elided = search.search(ds.points, params, &elide_report);
  std::uint64_t elided_total = 0;
  for (std::size_t q = 0; q < ds.points.size(); ++q) elided_total += elided.count(q);
  std::printf("%12s %14.3f %11.1f%% %12llu  (neighbors within sqrt(3)r)\n", "elide-IS",
              elide_report.time.total(),
              100.0 * static_cast<double>(elided_total) / static_cast<double>(exact_total),
              static_cast<unsigned long long>(elide_report.stats.is_calls));

  std::puts("\nexpected shape: recall and IS calls fall with aabb_scale; elide-IS");
  std::puts("over-returns (>100%) but is cheapest per candidate.");
  return 0;
}
