// Extension experiment (paper section 8, "Approximate Neighbor Search"):
// the speed/recall trade-off of (a) shrinking AABBs below the exact width
// and (b) eliding the sphere test entirely.
//
// Paper: "Speedups from this approximation would be significant, given
// that Step 2 is much more costly than Step 1"; shrunken AABBs trade
// returned-neighbor count for time (section 3.2.2's sensitivity). Not a
// paper figure — this regenerates the future-work claims quantitatively.
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

namespace {

std::uint64_t total_neighbors(const NeighborResult& result, std::size_t queries) {
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < queries; ++q) total += result.count(q);
  return total;
}

}  // namespace

RTNN_BENCH_CASE(ext_approx, "ext.approx",
                "Extension — approximate search (paper section 8)",
                "smaller AABBs and an elided sphere test trade recall for speed, "
                "with a sqrt(3)*r error bound for the latter",
                "recall and IS calls fall with aabb_scale; elide-IS over-returns "
                "(>100%) but is cheapest per candidate") {
  bench::BenchDataset ds = bench::paper_dataset("Buddha-4.6M", ctx.scale(), 16, ctx.seed());
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = ds.radius;
  params.k = 64;
  params.store_indices = false;
  NeighborSearch search;
  search.set_points(ds.points);
  const double nq = static_cast<double>(ds.points.size());

  // Exact reference.
  NeighborSearch::Report exact_report;
  std::uint64_t exact_total = 0;
  ctx.sample("exact",
             [&] {
               exact_report = {};
               const auto exact = search.search(ds.points, params, &exact_report);
               exact_total = total_neighbors(exact, ds.points.size());
               return exact_report.time.total();
             },
             {.work_items = nq});

  std::printf("%12s %14s %12s %12s\n", "config", "search[s]", "recall", "IS calls");
  std::printf("%12s %14.3f %11.1f%% %12llu\n", "exact", exact_report.time.total(),
              100.0, static_cast<unsigned long long>(exact_report.stats.is_calls));

  for (const float aabb_scale : {0.8f, 0.6f, 0.4f}) {
    params.aabb_scale = aabb_scale;
    params.elide_sphere_test = false;
    char label[32];
    std::snprintf(label, sizeof(label), "scale=%.1f", aabb_scale);
    char timing_name[32];
    std::snprintf(timing_name, sizeof(timing_name), "aabb_scale%.1f", aabb_scale);
    NeighborSearch::Report report;
    std::uint64_t total = 0;
    ctx.sample(timing_name,
               [&] {
                 report = {};
                 const auto got = search.search(ds.points, params, &report);
                 total = total_neighbors(got, ds.points.size());
                 return report.time.total();
               },
               {.work_items = nq});
    const double recall =
        100.0 * static_cast<double>(total) / static_cast<double>(exact_total);
    ctx.metric(std::string("recall.") + label, recall, "%");
    std::printf("%12s %14.3f %11.1f%% %12llu\n", label, report.time.total(), recall,
                static_cast<unsigned long long>(report.stats.is_calls));
  }

  params.aabb_scale = 1.0f;
  params.elide_sphere_test = true;
  NeighborSearch::Report elide_report;
  std::uint64_t elided_total = 0;
  ctx.sample("elide_is",
             [&] {
               elide_report = {};
               const auto elided = search.search(ds.points, params, &elide_report);
               elided_total = total_neighbors(elided, ds.points.size());
               return elide_report.time.total();
             },
             {.work_items = nq});
  const double elide_recall =
      100.0 * static_cast<double>(elided_total) / static_cast<double>(exact_total);
  ctx.metric("recall.elide_is", elide_recall, "%");
  std::printf("%12s %14.3f %11.1f%% %12llu  (neighbors within sqrt(3)r)\n", "elide-IS",
              elide_report.time.total(), elide_recall,
              static_cast<unsigned long long>(elide_report.stats.is_calls));

  std::puts("\nexpected shape: recall and IS calls fall with aabb_scale; elide-IS");
  std::puts("over-returns (>100%) but is cheapest per candidate.");
}
