// Request-deadline serving bench (the PR-8 robustness surface).
//
// Not a paper figure. One question at the fixed 100k-point serving scale
// (absolute size, like the serving.* family — the object is a ratio
// between two configurations of the same service, comparable across runs
// regardless of --scale):
//
//   deadline   open-loop arrivals far past capacity, with and without a
//              per-request deadline (RequestOptions::within). Without
//              deadlines every request queues and the p99 grows with the
//              backlog for the whole run; with a deadline of a few
//              service times, requests the backlog cannot reach in time
//              resolve as RejectReason::kDeadline at the queue or the
//              pre-launch gate, and the p99 of the *served* requests
//              stays bounded near the budget. deadline_miss_share is
//              what that bound costs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/timing.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"
#include "serving_traffic.hpp"
#include "service/service.hpp"

using namespace rtnn;

namespace {

constexpr std::size_t kServingPoints = 100'000;
constexpr std::uint32_t kServingK = 8;
constexpr int kRequests = 48;

/// KNN params sized for ~2K expected neighbors (the serving.* convention).
SearchParams serving_params(std::size_t n) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kServingK;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kServingK * 3.0 / (4.0 * 3.14159265 * static_cast<double>(n))));
  params.opts = OptimizationFlags::none();
  return params;
}

using bench_traffic::percentile;
using bench_traffic::request_queries;

}  // namespace

RTNN_BENCH_CASE(serving_deadline, "serving.deadline.100k",
                "Open-loop overload — per-request deadlines vs unbounded waiting",
                "arrivals far past capacity: without deadlines the served p99 "
                "is the backlog, with a budget of a few service times the "
                "unreachable tail resolves as kDeadline and the served p99 "
                "stays near the budget",
                "absolute 100k points; single submitter at a fixed rate") {
  const data::PointCloud cloud = data::uniform_box(
      kServingPoints, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 841));
  const SearchParams params = serving_params(cloud.size());

  /// One open-loop overload run: submits at `period_s`, a FIFO collector
  /// stamps completions; tickets then sort into served latencies vs
  /// deadline misses. `budget_s <= 0` disables deadlines.
  struct DeadlineResult {
    std::vector<double> served;  // ascending latencies of served requests
    std::size_t missed = 0;
  };
  auto overload_run = [&](service::SearchService& service,
                          const service::CloudHandle& handle, double period_s,
                          double budget_s) {
    DeadlineResult out;
    std::vector<service::SearchService::Ticket> tickets(kRequests);
    std::vector<Timer> stamps(kRequests);
    std::vector<double> latencies(kRequests, 0.0);
    std::atomic<int> submitted{0};
    std::thread collector([&] {
      for (int r = 0; r < kRequests; ++r) {
        while (submitted.load(std::memory_order_acquire) <= r) {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
        tickets[static_cast<std::size_t>(r)].wait();
        latencies[static_cast<std::size_t>(r)] =
            stamps[static_cast<std::size_t>(r)].elapsed();
      }
    });
    for (int r = 0; r < kRequests; ++r) {
      service::RequestOptions options;
      if (budget_s > 0.0) {
        options = service::RequestOptions::within(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(budget_s)));
      }
      Timer arrival;
      stamps[static_cast<std::size_t>(r)].reset();
      tickets[static_cast<std::size_t>(r)] =
          service.submit(handle, request_queries(cloud, r % 3, r), params, options);
      submitted.fetch_add(1, std::memory_order_release);
      const double remaining = period_s - arrival.elapsed();
      if (remaining > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
      }
    }
    collector.join();
    for (int r = 0; r < kRequests; ++r) {
      try {
        (void)tickets[static_cast<std::size_t>(r)].get();
        out.served.push_back(latencies[static_cast<std::size_t>(r)]);
      } catch (const service::ServiceError&) {
        ++out.missed;  // RejectReason::kDeadline at the queue or the gate
      }
    }
    std::sort(out.served.begin(), out.served.end());
    return out;
  };

  // Calibrate overload off this machine: mean service time of a short
  // solo burst (first query excluded — it pays the one-time index build),
  // then arrivals at 16x that rate; the deadline budget is one service
  // time, so arrivals landing behind an in-flight launch outrun it.
  service::SearchService off_service;
  const service::CloudHandle off_handle = off_service.register_cloud("off", cloud);
  (void)off_service.query(off_handle, request_queries(cloud, 2, 0), params);
  Timer calibrate;
  for (int r = 0; r < 8; ++r) {
    (void)off_service.query(off_handle, request_queries(cloud, 1, r), params);
  }
  const double solo_s = calibrate.elapsed() / 8.0;
  const double period_s = solo_s / 16.0;
  const double budget_s = solo_s;

  // Deadlines OFF: every request queues and eventually serves; the p99
  // is the backlog the open loop built up.
  DeadlineResult off;
  (void)ctx.time(
      "off.100k",
      [&] { off = overload_run(off_service, off_handle, period_s, 0.0); },
      {.work_items = static_cast<double>(kRequests)});

  // Deadlines ON: the same schedule with a fixed budget per request; the
  // unreachable tail is dropped before launch and typed kDeadline.
  service::SearchService on_service;
  const service::CloudHandle on_handle = on_service.register_cloud("on", cloud);
  (void)on_service.query(on_handle, request_queries(cloud, 2, 0), params);
  DeadlineResult on;
  (void)ctx.time(
      "on.100k",
      [&] { on = overload_run(on_service, on_handle, period_s, budget_s); },
      {.work_items = static_cast<double>(kRequests)});

  const double off_p99 = percentile(off.served, 0.99);
  const double on_p99 = percentile(on.served, 0.99);
  const double miss_share =
      static_cast<double>(on.missed) / static_cast<double>(kRequests);
  ctx.metric("arrival_period_ms", period_s * 1e3, "ms");
  ctx.metric("deadline_budget_ms", budget_s * 1e3, "ms");
  ctx.metric("deadline_p50_off_ms", percentile(off.served, 0.50) * 1e3, "ms");
  ctx.metric("deadline_p99_off_ms", off_p99 * 1e3, "ms");
  ctx.metric("deadline_p50_on_ms", percentile(on.served, 0.50) * 1e3, "ms");
  ctx.metric("deadline_p99_on_ms", on_p99 * 1e3, "ms");
  ctx.metric("deadline_miss_share", miss_share);
  ctx.metric("p99_ratio", on_p99 > 0.0 ? off_p99 / on_p99 : 0.0, "x");
  std::printf(
      "%10s %10s %12s %12s %9s %9s\n"
      "%9.3fms %9.3fms %10.3fms %10.3fms %8.1f%% %8.1fx\n",
      "period", "budget", "off p99", "on p99", "missed", "p99 ratio",
      period_s * 1e3, budget_s * 1e3, off_p99 * 1e3, on_p99 * 1e3,
      100.0 * miss_share, on_p99 > 0.0 ? off_p99 / on_p99 : 0.0);
}
