// Shared infrastructure for the figure-reproduction harnesses.
//
// Every bench binary regenerates one figure of the paper's evaluation
// (see DESIGN.md section 4 for the index). Datasets are the synthetic
// stand-ins of DESIGN.md section 2, sized by RTNN_BENCH_SCALE (default
// 0.02 — i.e. KITTI-25M becomes 500k points) so the whole suite runs in
// minutes on a CPU; the paper's *shapes* are preserved, absolute numbers
// are not (different substrate).
//
// Environment knobs:
//   RTNN_BENCH_SCALE   dataset scale factor relative to the paper (float)
//   RTNN_THREADS       worker threads (models the 2080 vs 2080Ti pair)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/timing.hpp"
#include "core/vec3.hpp"
#include "datasets/point_cloud.hpp"

namespace rtnn::bench {

/// Scale factor from RTNN_BENCH_SCALE (default 0.02, clamped to ≥0.002).
double bench_scale();

/// One evaluation dataset, named as in the paper.
struct BenchDataset {
  std::string name;        // e.g. "KITTI-12M" (paper name; actual size scaled)
  data::PointCloud points;
  float radius = 0.0f;     // auto-fitted search radius (~2K expected neighbors)
};

/// The nine datasets of Figure 11, at `scale` times the paper's sizes.
/// `k` is the neighbor budget used to auto-fit each radius.
std::vector<BenchDataset> paper_datasets(double scale, std::uint32_t k);

/// A single dataset by paper name ("KITTI-12M", "NBody-9M", "Buddha-4.6M", ...).
BenchDataset paper_dataset(const std::string& name, double scale, std::uint32_t k);

/// Radius such that a K-neighborhood is comfortably contained (median
/// K-th-neighbor distance of sampled queries, times 1.5).
float auto_radius(const data::PointCloud& points, std::uint32_t k);

/// Physically-motivated search radius per dataset family, independent of
/// the point-count scale: 3 m for LiDAR scenes (object scale), 10 Mpc/h
/// for the cosmological box (cluster scale). Surface models keep the
/// density-fitted radius. Used by the partitioning-centric harnesses
/// (Figures 12/13/16) where the paper's regime has the 2r AABB enclosing
/// far more than K neighbors.
float paper_radius(const std::string& name, const BenchDataset& ds);

/// Wall-clock of one invocation.
double time_once(const std::function<void()>& fn);

/// Geometric mean.
double geomean(const std::vector<double>& values);

/// Standard header: figure id, what the paper showed, what this harness
/// does differently (substrate note).
void print_figure_header(const std::string& figure, const std::string& paper_result,
                         const std::string& note = "");

}  // namespace rtnn::bench
