// Shared dataset infrastructure for the figure-reproduction cases.
//
// Every case in bench/ regenerates one figure of the paper's evaluation
// (see DESIGN.md section 4 for the index) and registers itself with the
// BenchRegistry (src/bench/); the rtnn_bench CLI runs them. Datasets are
// the synthetic stand-ins of DESIGN.md section 2, sized by the runner's
// scale option (default 0.02 — i.e. KITTI-25M becomes 500k points) so the
// whole suite runs in minutes on a CPU; the paper's *shapes* are
// preserved, absolute numbers are not (different substrate).
//
// Timing and console headers live in the runner (src/bench/runner.hpp):
// cases measure through CaseContext's min-of-N API, never single shots.
//
// Environment knobs (defaults for the CLI flags of the same meaning):
//   RTNN_BENCH_SCALE   dataset scale factor relative to the paper (float)
//   RTNN_THREADS       worker threads (models the 2080 vs 2080Ti pair)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vec3.hpp"
#include "datasets/point_cloud.hpp"

namespace rtnn::bench {

/// Scale factor from RTNN_BENCH_SCALE (default 0.02, clamped to ≥0.002).
/// The CLI's --scale flag overrides this default.
double bench_scale();

/// Mixes a user seed offset into a generator's base seed. seed == 0
/// reproduces the canonical datasets bit-for-bit; any other value derives
/// an independent but equally deterministic set.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t base) {
  return base ^ (seed * 0x9e3779b97f4a7c15ULL);
}

/// One evaluation dataset, named as in the paper.
struct BenchDataset {
  std::string name;        // e.g. "KITTI-12M" (paper name; actual size scaled)
  data::PointCloud points;
  float radius = 0.0f;     // auto-fitted search radius (~2K expected neighbors)
};

/// The nine datasets of Figure 11, at `scale` times the paper's sizes.
/// `k` is the neighbor budget used to auto-fit each radius; `seed` is the
/// explicit RNG seed offset (0 = the canonical, CI-reproducible sets).
std::vector<BenchDataset> paper_datasets(double scale, std::uint32_t k,
                                         std::uint64_t seed = 0);

/// A single dataset by paper name ("KITTI-12M", "NBody-9M", "Buddha-4.6M", ...).
BenchDataset paper_dataset(const std::string& name, double scale, std::uint32_t k,
                           std::uint64_t seed = 0);

/// Radius such that a K-neighborhood is comfortably contained (median
/// K-th-neighbor distance of sampled queries, times 1.5).
float auto_radius(const data::PointCloud& points, std::uint32_t k);

/// Physically-motivated search radius per dataset family, independent of
/// the point-count scale: 3 m for LiDAR scenes (object scale), 10 Mpc/h
/// for the cosmological box (cluster scale). Surface models keep the
/// density-fitted radius. Used by the partitioning-centric harnesses
/// (Figures 12/13/16) where the paper's regime has the 2r AABB enclosing
/// far more than K neighbors.
float paper_radius(const std::string& name, const BenchDataset& ds);

}  // namespace rtnn::bench
