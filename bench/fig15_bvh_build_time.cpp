// Figure 15 (appendix B): BVH construction time vs number of AABBs.
//
// Paper: construction time is linearly correlated with the number of
// AABBs (linear fit with R² = 0.996) — the empirical basis of the
// T_build = k1·M term in the bundling cost model.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/uniform.hpp"
#include "optix/optix.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig15, "fig15", "Figure 15 — BVH build time vs #AABBs",
                "linear: time = k1 * M with R^2 = 0.996 (RTX builds over 0-36M AABBs)",
                "R^2 close to 1 expected") {
  const auto max_aabbs = static_cast<std::size_t>(36e6 * ctx.scale() * 4.0);
  std::vector<double> xs, ys;
  std::printf("%14s %14s %16s\n", "#AABBs", "build[s]", "ns per AABB");
  int frac_index = 0;
  for (const double frac : {1.0 / 6, 2.0 / 6, 3.0 / 6, 4.0 / 6, 5.0 / 6, 1.0}) {
    ++frac_index;
    const auto n = static_cast<std::size_t>(static_cast<double>(max_aabbs) * frac);
    const data::PointCloud points =
        data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, bench::mix_seed(ctx.seed(), 17));
    std::vector<Aabb> aabbs(n);
    for (std::size_t i = 0; i < n; ++i) aabbs[i] = Aabb::cube(points[i], 0.01f);
    const ox::Context ctx_ox;
    // The runner's warmup repeat absorbs page faults and allocator churn.
    const double seconds = ctx.time("build.f" + std::to_string(frac_index),
                                    [&] { ctx_ox.build_accel(aabbs); },
                                    {.work_items = static_cast<double>(n)});
    std::printf("%14zu %14.4f %16.1f\n", n, seconds,
                1e9 * seconds / static_cast<double>(n));
    xs.push_back(static_cast<double>(n));
    ys.push_back(seconds);
  }

  // Least-squares linear fit + R².
  const auto m = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / m;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fit = slope * xs[i] + intercept;
    ss_res += (ys[i] - fit) * (ys[i] - fit);
    ss_tot += (ys[i] - sy / m) * (ys[i] - sy / m);
  }
  const double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  ctx.metric("fit.r2", r2);
  ctx.metric("fit.k1_ns_per_aabb", slope * 1e9, "ns");
  std::printf("\nlinear fit: time = %.3g * M + %.3g,  R^2 = %.4f\n", slope, intercept,
              r2);
  std::printf("k1 (build seconds per AABB) = %.3g — feeds the bundling cost model\n",
              slope);
  std::puts("expected shape: R^2 close to 1 (paper: 0.996).");
}
