// Figure 13: teasing apart the optimizations — NoOpt, Sched, Sched+Partition,
// Sched+Partition+Bundle, Oracle — on KITTI-12M (13a) and NBody-9M (13b),
// for KNN and range search.
//
// Paper: scheduling gives 1.8-5.9x; partitioning adds 154x for KITTI KNN
// but *degrades* NBody (many partitions -> build overhead); bundling adds
// ~18.8%/18.6% on range search and is within 3% of the Oracle on KITTI;
// the NBody Oracle disables partitioning entirely.
//
// Oracle here = best measured time over {scheduling-only (no partitioning)}
// ∪ {every theorem-family bundling plan M_o = 1..M}, the same "offline
// exhaustive search infeasible at run time" the paper describes. Each
// Oracle plan is timed once — the Oracle is already a min over many
// trials, so the runner's min-of-N is applied to the ablation axes only.
//
// Each ablation point is a hand-assembled stage pipeline (rtnn/stages.hpp)
// run through NeighborSearch::run_stages() — the axes are real stage
// objects, not bool flags.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "rtnn/rtnn.hpp"
#include "rtnn/stages.hpp"

using namespace rtnn;

namespace {

constexpr std::uint32_t kK = 16;

/// One ablation point: which stages run before the launch.
std::vector<std::unique_ptr<SearchStage>> ablation_pipeline(bool sched, bool part,
                                                            bool bundle) {
  std::vector<std::unique_ptr<SearchStage>> stages;
  if (sched) stages.push_back(std::make_unique<ScheduleStage>());
  if (part) {
    stages.push_back(std::make_unique<PartitionStage>());
    stages.push_back(std::make_unique<BundleStage>(bundle));
  }
  stages.push_back(std::make_unique<LaunchStage>());
  return stages;
}

SearchParams ablation_params(const bench::BenchDataset& ds, SearchMode mode) {
  SearchParams params;
  params.mode = mode;
  params.radius = ds.radius;
  params.k = kK;
  params.store_indices = false;
  params.max_grid_cells = std::uint64_t{1} << 24;
  return params;
}

double run_config(bench::CaseContext& ctx, const std::string& name,
                  NeighborSearch& search, const bench::BenchDataset& ds,
                  SearchMode mode, bool sched, bool part, bool bundle) {
  const SearchParams params = ablation_params(ds, mode);
  const auto stages = ablation_pipeline(sched, part, bundle);
  return ctx.time(name, [&] { search.run_stages(ds.points, params, stages); },
                  {.work_items = static_cast<double>(ds.points.size())});
}

double run_oracle(NeighborSearch& search, const bench::BenchDataset& ds,
                  SearchMode mode) {
  const SearchParams params = ablation_params(ds, mode);
  // Candidate 1: no partitioning at all.
  const auto sched_only = ablation_pipeline(/*sched=*/true, /*part=*/false,
                                            /*bundle=*/false);
  double best = bench::time_call(
      [&] { search.run_stages(ds.points, params, sched_only); });
  // Candidates 2..: every theorem-family plan, executed for real.
  std::vector<std::uint32_t> order(ds.points.size());
  std::iota(order.begin(), order.end(), 0u);
  const PartitionSet parts = search.partition(ds.points, order, params);
  const std::size_t m = parts.partitions.size();
  // Enumerate M_o; cap the enumeration for very fragmented partition sets.
  const std::size_t max_plans = 12;
  const std::size_t step = std::max<std::size_t>(1, m / max_plans);
  for (std::size_t mo = 1; mo <= m; mo += step) {
    // Build the theorem plan for this mo directly.
    std::vector<std::uint32_t> by_count(m);
    std::iota(by_count.begin(), by_count.end(), 0u);
    std::stable_sort(by_count.begin(), by_count.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return parts.partitions[a].query_ids.size() <
                              parts.partitions[b].query_ids.size();
                     });
    BundlePlan plan;
    plan.m_opt = static_cast<std::uint32_t>(mo);
    const std::size_t merged = m - mo + 1;
    Bundle big;
    for (std::size_t i = 0; i < merged; ++i) {
      const Partition& p = parts.partitions[by_count[i]];
      big.partition_indices.push_back(by_count[i]);
      big.aabb_width = std::max(big.aabb_width, p.aabb_width);
      big.query_count += p.query_ids.size();
    }
    big.skip_sphere_test = (mode == SearchMode::kRange) &&
                           (big.aabb_width * 1.7320508f * 0.5f) <= ds.radius;
    plan.bundles.push_back(std::move(big));
    for (std::size_t i = merged; i < m; ++i) {
      const Partition& p = parts.partitions[by_count[i]];
      Bundle solo;
      solo.partition_indices.push_back(by_count[i]);
      solo.aabb_width = p.aabb_width;
      solo.skip_sphere_test = p.skip_sphere_test;
      solo.query_count = p.query_ids.size();
      plan.bundles.push_back(std::move(solo));
    }
    const double t = bench::time_call(
        [&] { search.search_with_plan(ds.points, params, parts, plan); });
    best = std::min(best, t);
  }
  return best;
}

}  // namespace

RTNN_BENCH_CASE(fig13, "fig13",
                "Figure 13 — optimization ablation (NoOpt / Sched / +Part / +Bundle / Oracle)",
                "KITTI: partitioning gives 154x on KNN; NBody: partitioning degrades "
                "(Oracle disables it); bundling ~ +18% on range, within 3% of Oracle",
                "Sched ~ NoOpt in CPU wall clock (no warp divergence here); the "
                "coherence win shows in the SIMT counters of Figures 5/6") {
  for (const char* name : {"KITTI-12M", "NBody-9M"}) {
    bench::BenchDataset ds = bench::paper_dataset(name, ctx.scale(), kK, ctx.seed());
    // Physically-scaled radius (the regime the paper evaluates: the 2r
    // baseline AABB encloses far more than K neighbors, so partitioning
    // has headroom).
    ds.radius = bench::paper_radius(name, ds);
    NeighborSearch search;
    search.set_points(ds.points);
    std::printf("\n--- %s ---\n", name);
    std::printf("%-8s %10s %10s %12s %14s %10s\n", "mode", "NoOpt[s]", "Sched[s]",
                "+Part[s]", "+Bundle[s]", "Oracle[s]");
    for (const SearchMode mode : {SearchMode::kKnn, SearchMode::kRange}) {
      const std::string prefix =
          std::string(name) + "." + (mode == SearchMode::kKnn ? "knn" : "range");
      const double t_noopt =
          run_config(ctx, prefix + ".noopt", search, ds, mode, false, false, false);
      const double t_sched =
          run_config(ctx, prefix + ".sched", search, ds, mode, true, false, false);
      const double t_part =
          run_config(ctx, prefix + ".part", search, ds, mode, true, true, false);
      const double t_bundle =
          run_config(ctx, prefix + ".bundle", search, ds, mode, true, true, true);
      const double t_oracle = run_oracle(search, ds, mode);
      ctx.metric(prefix + ".oracle_s", t_oracle, "s");
      ctx.metric(prefix + ".bundle_vs_oracle", t_bundle / t_oracle, "x");
      std::printf("%-8s %10.3f %10.3f %12.3f %14.3f %10.3f\n",
                  mode == SearchMode::kKnn ? "KNN" : "Range", t_noopt, t_sched, t_part,
                  t_bundle, t_oracle);
    }
  }
  std::puts("\nexpected shape: +Part/+Bundle are the big KNN win (paper: 154x on");
  std::puts("KITTI; here ~10-20x) and a small range-search effect; Bundle is close");
  std::puts("to Oracle. Substrate note: Sched ~ NoOpt in wall clock because the");
  std::puts("independent CPU engine pays no warp divergence — the coherence win");
  std::puts("shows in the SIMT counters (Figures 5/6), not in CPU seconds.");
}
