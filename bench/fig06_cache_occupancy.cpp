// Figure 6: why ordered searches are faster — L1/L2 hit rates and SM
// occupancy for raster-ordered vs randomly-ordered queries.
//
// Paper: ordered search has significantly higher L1/L2 cache hit rate and
// SM occupancy than the random-order search.
//
// Here: the warp-lockstep engine replays BVH-node/primitive fetches
// through the two-level cache simulator (single-threaded so the hierarchy
// is exact) and reports lane occupancy of the lockstep warps. The counters
// are deterministic, so this case records metrics, not timings.
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/uniform.hpp"
#include "optix/optix.hpp"
#include "rtnn/pipelines.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(fig06, "fig06",
                "Figure 6 — L1/L2 hit rate and occupancy, raster vs random order",
                "raster: higher L1/L2 cache hit rates and higher SM occupancy than random",
                "per-level local L2 rates can invert under a near-perfect L1; DRAM/1k "
                "is the comparable memory-system signal") {
  bench::BenchDataset ds = bench::paper_dataset("KITTI-12M", ctx.scale(), 16, ctx.seed());

  // Build the paper's search BVH (AABB width 2r).
  std::vector<Aabb> aabbs(ds.points.size());
  for (std::size_t i = 0; i < ds.points.size(); ++i) {
    aabbs[i] = Aabb::cube(ds.points[i], 2.0f * ds.radius);
  }
  const ox::Accel accel = ox::Context{}.build_accel(aabbs);

  data::GridQueryParams gq;
  gq.resolution = 96;
  gq.box = data::bounds(ds.points);
  gq.seed = bench::mix_seed(ctx.seed(), 7);
  data::PointCloud raster = data::grid_queries_raster(gq);
  data::PointCloud random = raster;
  data::shuffle(random, bench::mix_seed(ctx.seed(), 8));

  auto run = [&](const data::PointCloud& queries, const char* label) {
    NeighborResult result(queries.size(), 16, /*store_indices=*/false);
    std::vector<std::uint32_t> ids(queries.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    pipelines::RangePipeline pipeline(ds.points, queries, ids, ds.radius, 16,
                                      /*skip_sphere_test=*/false, result);
    ox::LaunchOptions options;
    options.model = ox::ExecutionModel::kWarpLockstep;
    options.simulate_caches = true;
    options.parallel = false;  // exact, shared memory hierarchy
    const auto stats =
        ox::launch(accel, pipeline, static_cast<std::uint32_t>(queries.size()), options);
    const double dram_per_k =
        1000.0 *
        static_cast<double>(stats.l2.accesses - stats.l2.hits) /
        static_cast<double>(stats.l1.accesses);
    const std::string prefix = label;
    ctx.metric(prefix + ".l1_hit", 100.0 * stats.l1.hit_rate(), "%");
    ctx.metric(prefix + ".l2_hit_local", 100.0 * stats.l2.hit_rate(), "%");
    ctx.metric(prefix + ".dram_per_1k", dram_per_k);
    ctx.metric(prefix + ".occupancy", 100.0 * stats.occupancy(), "%");
    std::printf("%8s %12.1f%% %12.1f%% %12.1f %14.1f%%\n", label,
                100.0 * stats.l1.hit_rate(), 100.0 * stats.l2.hit_rate(), dram_per_k,
                100.0 * stats.occupancy());
  };

  std::printf("%8s %13s %13s %12s %15s\n", "order", "L1 hit", "L2 hit(local)",
              "DRAM/1k", "occupancy");
  run(raster, "raster");
  run(random, "random");
  std::puts("\nexpected shape: raster has higher L1 hit rate, lower DRAM traffic and");
  std::puts("higher occupancy. (Local L2 hit rate can invert here: a near-perfect L1");
  std::puts("leaves L2 only compulsory misses — an artifact of per-level local rates;");
  std::puts("the paper's profiler reports global rates, hence DRAM/1k is the");
  std::puts("comparable memory-system signal.)");
}
