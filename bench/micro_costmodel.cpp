// Cost-model calibration (paper §5.2 + Supplementary A).
//
// Paper constants on RTX 2080: k1:k2 ≈ 1:15000 (BVH-build-per-AABB vs
// KNN IS call — note the paper's k2 absorbs N·ρ·S³ scaling, ours is per
// IS call so the comparable ratio differs); k1:k3 ≈ 20:1 without the
// sphere test and 2:1 with it. This harness runs the offline profiling
// RTNN prescribes and prints the substrate's constants — these are the
// numbers to paste into CostModel's defaults when porting to new hardware.
#include <cstdio>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "datasets/lidar.hpp"
#include "rtnn/cost_model.hpp"

using namespace rtnn;

RTNN_BENCH_CASE(micro_costmodel, "micro.costmodel",
                "Micro — cost model calibration (k1, k2, k3 of §5.2 / Supp. A)",
                "paper (RTX 2080): k1:k2 ~ 1:15000; k1:k3 = 20:1 (no sphere test) "
                "or 2:1 (with)",
                "only the ratios matter for bundling") {
  data::LidarParams lidar;
  lidar.target_points = static_cast<std::size_t>(6e6 * ctx.scale() * 2);
  lidar.seed = bench::mix_seed(ctx.seed(), lidar.seed);
  const data::PointCloud points = data::lidar_scan(lidar);
  const float radius = bench::auto_radius(points, 16);

  CostModel model;
  ctx.time("calibrate", [&] { model = CostModel::calibrate(points, radius, 16); },
           {.work_items = static_cast<double>(points.size())});
  ctx.metric("k1_ns", model.k1 * 1e9, "ns");
  ctx.metric("k2_ns", model.k2 * 1e9, "ns");
  ctx.metric("k3_slow_ns", model.k3_slow * 1e9, "ns");
  ctx.metric("k3_fast_ns", model.k3_fast * 1e9, "ns");
  ctx.metric("k_refit_ns", model.k_refit * 1e9, "ns");
  ctx.metric("ratio.k2_over_k1", model.k2 / model.k1, "x");
  ctx.metric("ratio.k3_slow_over_fast", model.k3_slow / model.k3_fast, "x");
  ctx.metric("ratio.k1_over_k_refit", model.k1 / model.k_refit, "x");

  std::printf("sample: %zu lidar points, r = %.3f, K = 16\n\n", points.size(), radius);
  std::printf("k1 (BVH build / AABB)          = %10.2f ns\n", model.k1 * 1e9);
  std::printf("k_refit (accel refit / AABB)   = %10.2f ns  (k1:k_refit = %.1f:1; the\n"
              "                                  refit-vs-rebuild policy needs < 1:1)\n",
              model.k_refit * 1e9, model.k1 / model.k_refit);
  std::printf("k2 (KNN IS call)               = %10.2f ns\n", model.k2 * 1e9);
  std::printf("k3_slow (range IS, sphere test)= %10.2f ns\n", model.k3_slow * 1e9);
  std::printf("k3_fast (range IS, test elided)= %10.2f ns\n", model.k3_fast * 1e9);
  std::printf("\nratios:  k1:k2 = 1:%.1f   k1:k3_slow = %.1f:1   k1:k3_fast = %.1f:1\n",
              model.k2 / model.k1, model.k1 / model.k3_slow, model.k1 / model.k3_fast);
  std::printf("k3_slow : k3_fast = %.2f (paper's 20:1-vs-2:1 contrast predicts > 1)\n",
              model.k3_slow / model.k3_fast);
  std::puts("\nTo pin these as library defaults, copy them into CostModel{} in");
  std::puts("src/rtnn/cost_model.hpp (only the ratios matter for bundling).");
}
