// Dynamic point-cloud benches: the per-frame index lifecycle.
//
// Not a paper figure. The paper's headline workloads (lidar frames, SPH
// fluids, N-body steps) are frame *sequences*, but its evaluation is
// single-frame — every timestep pays a from-scratch build. These cases
// measure what the lifecycle adds on a small-motion drift sequence (the
// SPH/N-body regime), at three absolute sizes (not paper-scaled: the
// object is the refit-vs-rebuild ratio at named sizes, comparable across
// runs regardless of --scale):
//
//   frame_step.*  end-to-end frame latency for a tracking-shaped load
//                 (Q = N/10 queries against the persistent cloud). Index
//                 maintenance dominates here, so the lifecycle's speedup
//                 shows up end to end.
//   selfknn.*     end-to-end frame latency for the SPH shape (Q = N
//                 self-neighborhoods). Search dominates; the lifecycle
//                 still removes the whole build from the critical path,
//                 but the end-to-end ratio is bounded by search cost.
//   index.*       the index-maintenance component alone (time.bvh +
//                 time.refit + upload of the per-frame Report) — the
//                 pure refit-vs-rebuild ratio.
//
// dynamic.policy exercises the cost model's refit-vs-rebuild decision on
// correspondence-free lidar sweeps, where refit quality collapses and
// rebuilds must kick in.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/morton.hpp"
#include "datasets/motion.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

namespace {

constexpr std::uint32_t kFrameK = 8;

/// KNN frame search over one persistent monolithic index (the
/// dynamic-session configuration): radius sized for ~2K expected
/// neighbors in the unit cube at population n.
SearchParams frame_params(std::size_t n) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kFrameK;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kFrameK * 3.0 / (4.0 * 3.14159265 * static_cast<double>(n))));
  params.opts = OptimizationFlags::none();
  return params;
}

/// Initial cloud in Morton order, the way frame workloads keep their
/// points (SPH codes re-sort periodically; lidar arrives scan-ordered).
/// Small-motion frames then stay coherent without per-frame scheduling.
data::PointCloud morton_ordered_cloud(std::size_t n, std::uint64_t seed) {
  data::PointCloud points = data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, seed);
  const Aabb box = data::bounds(points);
  std::sort(points.begin(), points.end(), [&](const Vec3& a, const Vec3& b) {
    return morton3d_63(a, box) < morton3d_63(b, box);
  });
  return points;
}

/// A contiguous Morton window of N/10 points: the tracking-shaped query
/// load (a sensor or solver working one spatial region of the persistent
/// cloud per frame). Contiguous in Morton order = spatially compact =
/// coherent rays.
std::span<const Vec3> tracked_queries(const data::PointCloud& frame) {
  return std::span<const Vec3>(frame.data(), frame.size() / 10);
}

}  // namespace

RTNN_BENCH_CASE(dynamic_frame, "dynamic.frame",
                "Dynamic frame-step — refit lifecycle vs per-frame rebuild",
                "refitting a persistent accel amortizes the per-frame BVH build "
                "(the standard RT driver practice for dynamic geometry)",
                "absolute sizes; small-motion drift (~10% of r per frame)") {
  // Three timing pairs per size, refit-lifecycle vs rebuild-every-frame:
  //   frame_step  the per-frame *index* work the lifecycle changes
  //               (time.bvh + time.refit of the frame's Report) — query
  //               cost, identical code on both paths, excluded
  //   track       end-to-end frame, tracking load (Q = N/10 window)
  //   selfknn     end-to-end frame, SPH shape (Q = N self-neighborhoods;
  //               search-bound, so the end-to-end ratio compresses)
  std::printf("%8s %12s  %14s %14s %9s %10s\n", "points", "timing", "refit[s]",
              "rebuild[s]", "speedup", "frames/s");
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                              std::size_t{1'000'000}}) {
    const std::string label =
        n == 10'000 ? "10k" : (n == 100'000 ? "100k" : "1000k");
    const data::PointCloud cloud =
        morton_ordered_cloud(n, bench::mix_seed(ctx.seed(), 271));
    const SearchParams params = frame_params(n);
    data::DriftParams drift;
    drift.velocity = 0.1f * params.radius;
    drift.seed = bench::mix_seed(ctx.seed(), 39);

    // One motion stream and one session/searcher per measured timing, so
    // every sample is a fresh frame absorbed by the path under test.
    enum class Load { kIndex, kTrack, kSelf };
    struct FrameTiming {
      const char* name;
      Load load;
    };
    for (const FrameTiming timing : {FrameTiming{"frame_step", Load::kIndex},
                                     FrameTiming{"track", Load::kTrack},
                                     FrameTiming{"selfknn", Load::kSelf}}) {
      // Refit lifecycle path.
      DynamicSearchSession session(params);
      data::DriftMotion session_motion(cloud, drift);
      (void)session.step(session_motion.points());  // frame 0: build, untimed
      NeighborSearch::Report last_report;
      const double refit_s = ctx.sample(
          std::string(timing.name) + ".refit." + label,
          [&] {
            const data::PointCloud& frame = session_motion.step();  // untimed
            Timer timer;
            if (timing.load == Load::kSelf) {
              (void)session.step(frame, &last_report);
            } else {
              (void)session.step(frame, tracked_queries(frame), &last_report);
            }
            return timing.load == Load::kIndex
                       ? last_report.time.bvh + last_report.time.refit
                       : timer.elapsed();
          },
          {.work_items = static_cast<double>(n)});
      if (timing.load == Load::kSelf) {
        ctx.metric("sah_inflation." + label, last_report.sah_inflation);
      }

      // The pre-lifecycle behavior: upload + from-scratch build per frame.
      NeighborSearch rebuild;
      data::DriftMotion rebuild_motion(cloud, drift);
      const double rebuild_s = ctx.sample(
          std::string(timing.name) + ".rebuild." + label,
          [&] {
            const data::PointCloud& frame = rebuild_motion.step();
            NeighborSearch::Report report;
            Timer timer;
            rebuild.set_points(frame);
            if (timing.load == Load::kSelf) {
              (void)rebuild.search(frame, params, &report);
            } else {
              (void)rebuild.search(tracked_queries(frame), params, &report);
            }
            return timing.load == Load::kIndex ? report.time.bvh : timer.elapsed();
          },
          {.work_items = static_cast<double>(n)});

      ctx.metric(std::string("speedup.") + timing.name + "." + label,
                 rebuild_s / refit_s, "x");
      if (timing.load == Load::kIndex) {
        std::printf("%8zu %12s  %14.5f %14.5f %8.2fx\n", n, timing.name, refit_s,
                    rebuild_s, rebuild_s / refit_s);
      } else {
        std::printf("%8zu %12s  %14.5f %14.5f %8.2fx %10.1f\n", n, timing.name,
                    refit_s, rebuild_s, rebuild_s / refit_s, 1.0 / refit_s);
      }
    }
  }
}

RTNN_BENCH_CASE(dynamic_policy, "dynamic.policy",
                "Refit-vs-rebuild policy — correspondence-free lidar sweeps",
                "frames with no per-point correspondence inflate the refitted "
                "tree's SAH; the cost model must detect it and rebuild",
                "100k-point sweeps; policy counters, not timings") {
  data::LidarParams lidar;
  lidar.target_points = 100'000;
  lidar.seed = bench::mix_seed(ctx.seed(), 5);
  const data::LidarSweep sweep(lidar, /*frame_advance=*/1.5f);

  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kFrameK;
  params.radius = 0.5f;  // ~K neighbors at this density
  params.opts = OptimizationFlags::none();

  DynamicSearchSession session(params);
  std::uint32_t refits = 0;
  std::uint32_t rebuilds = 0;
  double max_inflation = 1.0;
  constexpr std::uint32_t kFrames = 5;
  std::printf("%6s %8s %10s %14s\n", "frame", "action", "inflation", "step[s]");
  for (std::uint32_t t = 0; t < kFrames; ++t) {
    const data::PointCloud frame = sweep.frame(t);
    NeighborSearch::Report report;
    Timer timer;
    (void)session.step(frame, tracked_queries(frame), &report);
    const double seconds = timer.elapsed();
    refits += report.accel_refits;
    rebuilds += report.accel_rebuilds;
    max_inflation = std::max(max_inflation, report.sah_inflation);
    const char* action = report.accel_refits ? "refit"
                         : report.accel_rebuilds ? "rebuild"
                                                 : "build";
    std::printf("%6u %8s %10.3f %14.5f\n", t, action, report.sah_inflation, seconds);
  }
  ctx.metric("refits", refits);
  ctx.metric("rebuilds", rebuilds);
  ctx.metric("max_sah_inflation", max_inflation);
}
