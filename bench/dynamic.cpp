// Dynamic point-cloud benches: the per-frame index lifecycle.
//
// Not a paper figure. The paper's headline workloads (lidar frames, SPH
// fluids, N-body steps) are frame *sequences*, but its evaluation is
// single-frame — every timestep pays a from-scratch build. These cases
// measure what the lifecycle adds on a small-motion drift sequence (the
// SPH/N-body regime), at three absolute sizes (not paper-scaled: the
// object is the refit-vs-rebuild ratio at named sizes, comparable across
// runs regardless of --scale):
//
//   frame_step.*  end-to-end frame latency for a tracking-shaped load
//                 (Q = N/10 queries against the persistent cloud). Index
//                 maintenance dominates here, so the lifecycle's speedup
//                 shows up end to end.
//   selfknn.*     end-to-end frame latency for the SPH shape (Q = N
//                 self-neighborhoods). Search dominates; the lifecycle
//                 still removes the whole build from the critical path,
//                 but the end-to-end ratio is bounded by search cost.
//   index.*       the index-maintenance component alone (time.bvh +
//                 time.refit + upload of the per-frame Report) — the
//                 pure refit-vs-rebuild ratio.
//
// dynamic.policy exercises the cost model's refit-vs-rebuild decision on
// correspondence-free lidar sweeps, where refit quality collapses and
// rebuilds must kick in.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench_util.hpp"
#include "core/morton.hpp"
#include "datasets/motion.hpp"
#include "datasets/uniform.hpp"
#include "rtnn/rtnn.hpp"

using namespace rtnn;

namespace {

constexpr std::uint32_t kFrameK = 8;

/// KNN frame search over one persistent monolithic index (the
/// dynamic-session configuration): radius sized for ~2K expected
/// neighbors in the unit cube at population n.
SearchParams frame_params(std::size_t n) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kFrameK;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kFrameK * 3.0 / (4.0 * 3.14159265 * static_cast<double>(n))));
  params.opts = OptimizationFlags::none();
  return params;
}

/// Initial cloud in Morton order, the way frame workloads keep their
/// points (SPH codes re-sort periodically; lidar arrives scan-ordered).
/// Small-motion frames then stay coherent without per-frame scheduling.
data::PointCloud morton_ordered_cloud(std::size_t n, std::uint64_t seed) {
  data::PointCloud points = data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, seed);
  const Aabb box = data::bounds(points);
  std::sort(points.begin(), points.end(), [&](const Vec3& a, const Vec3& b) {
    return morton3d_63(a, box) < morton3d_63(b, box);
  });
  return points;
}

/// A contiguous Morton window of N/10 points: the tracking-shaped query
/// load (a sensor or solver working one spatial region of the persistent
/// cloud per frame). Contiguous in Morton order = spatially compact =
/// coherent rays.
std::span<const Vec3> tracked_queries(const data::PointCloud& frame) {
  return std::span<const Vec3>(frame.data(), frame.size() / 10);
}

}  // namespace

RTNN_BENCH_CASE(dynamic_frame, "dynamic.frame",
                "Dynamic frame-step — refit lifecycle vs per-frame rebuild",
                "refitting a persistent accel amortizes the per-frame BVH build "
                "(the standard RT driver practice for dynamic geometry)",
                "absolute sizes; small-motion drift (~10% of r per frame)") {
  // Three timing pairs per size, refit-lifecycle vs rebuild-every-frame:
  //   frame_step  the per-frame *index* work the lifecycle changes
  //               (time.bvh + time.refit of the frame's Report) — query
  //               cost, identical code on both paths, excluded
  //   track       end-to-end frame, tracking load (Q = N/10 window)
  //   selfknn     end-to-end frame, SPH shape (Q = N self-neighborhoods;
  //               search-bound, so the end-to-end ratio compresses)
  std::printf("%8s %12s  %14s %14s %9s %10s\n", "points", "timing", "refit[s]",
              "rebuild[s]", "speedup", "frames/s");
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                              std::size_t{1'000'000}}) {
    const std::string label =
        n == 10'000 ? "10k" : (n == 100'000 ? "100k" : "1000k");
    const data::PointCloud cloud =
        morton_ordered_cloud(n, bench::mix_seed(ctx.seed(), 271));
    const SearchParams params = frame_params(n);
    data::DriftParams drift;
    drift.velocity = 0.1f * params.radius;
    drift.seed = bench::mix_seed(ctx.seed(), 39);

    // One motion stream and one session/searcher per measured timing, so
    // every sample is a fresh frame absorbed by the path under test.
    enum class Load { kIndex, kTrack, kSelf };
    struct FrameTiming {
      const char* name;
      Load load;
    };
    for (const FrameTiming timing : {FrameTiming{"frame_step", Load::kIndex},
                                     FrameTiming{"track", Load::kTrack},
                                     FrameTiming{"selfknn", Load::kSelf}}) {
      // Refit lifecycle path.
      DynamicSearchSession session(params);
      data::DriftMotion session_motion(cloud, drift);
      (void)session.step(session_motion.points());  // frame 0: build, untimed
      NeighborSearch::Report last_report;
      const double refit_s = ctx.sample(
          std::string(timing.name) + ".refit." + label,
          [&] {
            const data::PointCloud& frame = session_motion.step();  // untimed
            Timer timer;
            if (timing.load == Load::kSelf) {
              (void)session.step(frame, &last_report);
            } else {
              (void)session.step(frame, tracked_queries(frame), &last_report);
            }
            return timing.load == Load::kIndex
                       ? last_report.time.bvh + last_report.time.refit
                       : timer.elapsed();
          },
          {.work_items = static_cast<double>(n)});
      if (timing.load == Load::kSelf) {
        ctx.metric("sah_inflation." + label, last_report.sah_inflation);
      }

      // The pre-lifecycle behavior: upload + from-scratch build per frame.
      NeighborSearch rebuild;
      data::DriftMotion rebuild_motion(cloud, drift);
      const double rebuild_s = ctx.sample(
          std::string(timing.name) + ".rebuild." + label,
          [&] {
            const data::PointCloud& frame = rebuild_motion.step();
            NeighborSearch::Report report;
            Timer timer;
            rebuild.set_points(frame);
            if (timing.load == Load::kSelf) {
              (void)rebuild.search(frame, params, &report);
            } else {
              (void)rebuild.search(tracked_queries(frame), params, &report);
            }
            return timing.load == Load::kIndex ? report.time.bvh : timer.elapsed();
          },
          {.work_items = static_cast<double>(n)});

      ctx.metric(std::string("speedup.") + timing.name + "." + label,
                 rebuild_s / refit_s, "x");
      if (timing.load == Load::kIndex) {
        std::printf("%8zu %12s  %14.5f %14.5f %8.2fx\n", n, timing.name, refit_s,
                    rebuild_s, rebuild_s / refit_s);
      } else {
        std::printf("%8zu %12s  %14.5f %14.5f %8.2fx %10.1f\n", n, timing.name,
                    refit_s, rebuild_s, rebuild_s / refit_s, 1.0 / refit_s);
      }
    }
  }
}

RTNN_BENCH_CASE(dynamic_tiled, "dynamic.tiled",
                "Two-level tiled index — localized motion touches few tiles",
                "a TLAS over Morton tiles confines per-frame index work to the "
                "tiles whose members actually moved; the monolithic index pays "
                "O(N) refit for the same frames",
                "100k-point lidar street, one moving vehicle-sized region; "
                "touched-tile fraction and index work vs monolithic") {
  // The locality workload the monolithic lifecycle cannot exploit: a
  // lidar street where only the returns on one moving vehicle change
  // between frames (everything else is static background). Point count
  // and identity are constant, so both paths run their update lifecycle;
  // the tiled path should touch ~touched/tile_count of the index.
  data::LidarParams lidar;
  lidar.target_points = 100'000;
  lidar.seed = bench::mix_seed(ctx.seed(), 5);
  const data::PointCloud street = data::lidar_scan(lidar);
  const std::size_t n = street.size();

  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kFrameK;
  params.radius = 0.5f;
  params.opts = OptimizationFlags::none();

  // The vehicle: every return within a car-sized ball of one anchor
  // (picked mid-cloud so it lands on real geometry).
  const Vec3 anchor = street[n / 2];
  std::vector<std::uint32_t> movers;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (distance2(street[i], anchor) < 1.5f * 1.5f) movers.push_back(i);
  }

  TileOptions tiling;
  tiling.tile_threshold = n / 48;  // ~48 Morton tiles
  tiling.lazy_build = true;

  struct Path {
    const char* name;
    bool tiled;
  };
  std::uint64_t touched = 0, tile_frames = 0, lazy_builds = 0;
  std::uint32_t tile_count = 0, tile_refits = 0, tile_rebuilds = 0;
  std::uint64_t tile_index_bytes = 0;
  double tiled_s = 0.0, mono_s = 0.0;
  for (const Path path : {Path{"tiled", true}, Path{"mono", false}}) {
    NeighborSearch search;
    if (path.tiled) search.set_tiling(tiling);
    search.set_index_persistence(true);
    search.set_points(street);
    data::PointCloud frame = street;
    Pcg32 rng(bench::mix_seed(ctx.seed(), 83));
    // The perception load interrogates the moving object: queries are the
    // vehicle's own returns, so the touched tiles are also the routed
    // ones (lazy builds, then per-tile refits, land on the hot region).
    std::vector<Vec3> queries(movers.size());
    const auto vehicle_queries = [&] {
      for (std::size_t i = 0; i < movers.size(); ++i) queries[i] = frame[movers[i]];
      return std::span<const Vec3>(queries);
    };
    NeighborSearch::Report frame0;  // frame 0: routed tiles build lazily here
    (void)search.search(vehicle_queries(), params, &frame0);
    if (path.tiled) lazy_builds += frame0.tile_lazy_builds;
    const double step_s = ctx.sample(
        std::string("frame_step.") + path.name,
        [&] {
          // Advance the vehicle: small coherent drift plus jitter,
          // background untouched.
          const Vec3 step{0.05f * params.radius * (rng.next_float() + 0.5f),
                          0.02f * params.radius * (rng.next_float() - 0.5f), 0.0f};
          for (const std::uint32_t id : movers) frame[id] += step;
          search.update_points(frame);
          NeighborSearch::Report report;
          (void)search.search(vehicle_queries(), params, &report);
          if (path.tiled) {
            touched += report.tiles_touched;
            ++tile_frames;
            lazy_builds += report.tile_lazy_builds;
            tile_count = std::max(tile_count, report.tile_count);
            tile_refits += report.tile_refits;
            tile_rebuilds += report.tile_rebuilds;
            tile_index_bytes = std::max(tile_index_bytes, report.index_total_bytes);
          }
          return report.time.bvh + report.time.refit;
        },
        {.work_items = static_cast<double>(n)});
    (path.tiled ? tiled_s : mono_s) = step_s;
  }

  const double touched_fraction =
      tile_frames && tile_count
          ? static_cast<double>(touched) /
                (static_cast<double>(tile_frames) * tile_count)
          : 0.0;
  ctx.metric("tiled.touched_tile_fraction", touched_fraction);
  ctx.metric("tiled.tile_count", tile_count);
  ctx.metric("tiled.tiles_touched_per_frame",
             tile_frames ? static_cast<double>(touched) / tile_frames : 0.0);
  ctx.metric("tiled.lazy_builds", static_cast<double>(lazy_builds));
  ctx.metric("tiled.tile_refits", tile_refits);
  ctx.metric("tiled.tile_rebuilds", tile_rebuilds);
  ctx.metric("tiled.tile_index_bytes", static_cast<double>(tile_index_bytes), "B");
  ctx.metric("speedup.index_update", mono_s / tiled_s, "x");
  std::printf(
      "%zu points, %zu movers: %u tiles, %.3f touched-fraction, "
      "index update %.5fs tiled vs %.5fs monolithic (%.2fx)\n",
      n, movers.size(), tile_count, touched_fraction, tiled_s, mono_s,
      mono_s / tiled_s);
}

RTNN_BENCH_CASE(dynamic_policy, "dynamic.policy",
                "Refit-vs-rebuild policy — correspondence-free lidar sweeps",
                "frames with no per-point correspondence inflate the refitted "
                "tree's SAH; the cost model must detect it and rebuild",
                "100k-point sweeps; policy counters, not timings") {
  data::LidarParams lidar;
  lidar.target_points = 100'000;
  lidar.seed = bench::mix_seed(ctx.seed(), 5);
  const data::LidarSweep sweep(lidar, /*frame_advance=*/1.5f);

  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.k = kFrameK;
  params.radius = 0.5f;  // ~K neighbors at this density
  params.opts = OptimizationFlags::none();

  DynamicSearchSession session(params);
  std::uint32_t refits = 0;
  std::uint32_t rebuilds = 0;
  double max_inflation = 1.0;
  constexpr std::uint32_t kFrames = 5;
  std::printf("%6s %8s %10s %14s\n", "frame", "action", "inflation", "step[s]");
  for (std::uint32_t t = 0; t < kFrames; ++t) {
    const data::PointCloud frame = sweep.frame(t);
    NeighborSearch::Report report;
    Timer timer;
    (void)session.step(frame, tracked_queries(frame), &report);
    const double seconds = timer.elapsed();
    refits += report.accel_refits;
    rebuilds += report.accel_rebuilds;
    max_inflation = std::max(max_inflation, report.sah_inflation);
    const char* action = report.accel_refits ? "refit"
                         : report.accel_rebuilds ? "rebuild"
                                                 : "build";
    std::printf("%6u %8s %10.3f %14.5f\n", t, action, report.sah_inflation, seconds);
  }
  ctx.metric("refits", refits);
  ctx.metric("rebuilds", rebuilds);
  ctx.metric("max_sah_inflation", max_inflation);
}
