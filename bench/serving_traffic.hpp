// Shared request-traffic shape for the serving bench and demo: mixed
// request sizes over deterministic windows of the cloud, plus the
// latency-percentile helper. One definition so the bench
// (bench/serving.cpp) and the example (examples/serving_demo.cpp) cannot
// drift apart. Header-only and dependency-free on the bench runner, so
// the example builds with RTNN_BUILD_BENCHES=OFF.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "core/vec3.hpp"

namespace rtnn::bench_traffic {

/// Mixed request sizes, the serving-traffic shape.
inline constexpr std::size_t kRequestSizes[] = {16, 64, 256};
inline constexpr std::size_t kMaxRequestSize = 256;

inline std::size_t request_size(int client, int request) {
  return kRequestSizes[static_cast<std::size_t>(client + request) % 3];
}

/// Request r of client c: a deterministic contiguous window of the
/// cloud. Safe for any cloud size: the window is clamped to the cloud
/// and its start wraps within the valid range.
inline std::span<const Vec3> request_queries(std::span<const Vec3> cloud, int client,
                                             int request) {
  const std::size_t size = std::min(request_size(client, request), cloud.size());
  const std::size_t range = cloud.size() - size + 1;  // valid window starts
  const std::size_t first =
      (static_cast<std::size_t>(client) * 7919 + static_cast<std::size_t>(request) * 499) %
      range;
  return cloud.subspan(first, size);
}

inline std::size_t total_request_queries(std::span<const Vec3> cloud, int clients,
                                         int requests_per_client) {
  std::size_t total = 0;
  for (int c = 0; c < clients; ++c) {
    for (int r = 0; r < requests_per_client; ++r) {
      total += std::min(request_size(c, r), cloud.size());
    }
  }
  return total;
}

/// Duplicate-heavy coherent traffic: lidar-frame slices. Every client
/// scans the *same* sweep — a window of kCoherentWindow rows advancing by
/// half its width per request — at a small per-client phase offset
/// (3/8 window). Windows of concurrent requests therefore overlap heavily
/// and share rows *exactly* (they are slices of one cloud): at 2 clients
/// ~30% of a tick's merged rows are coincident duplicates, at 8 clients
/// ~55–80% — the share, and with it the batch optimizer's dedup win,
/// grows with the client count. This is the shape real serving traffic
/// has (lidar frames and SPH steps re-query the same positions across
/// overlapping requests), and what arrival-order concatenation wastes.
inline constexpr std::size_t kCoherentWindow = 256;

inline std::span<const Vec3> coherent_request_queries(std::span<const Vec3> cloud,
                                                      int client, int request) {
  const std::size_t size = std::min(kCoherentWindow, cloud.size());
  const std::size_t range = cloud.size() - size + 1;  // valid window starts
  const std::size_t first = (static_cast<std::size_t>(request) * (size / 2) +
                             static_cast<std::size_t>(client) * ((3 * size) / 8)) %
                            range;
  return cloud.subspan(first, size);
}

inline std::size_t total_coherent_queries(std::span<const Vec3> cloud, int clients,
                                          int requests_per_client) {
  return static_cast<std::size_t>(clients) *
         static_cast<std::size_t>(requests_per_client) *
         std::min(kCoherentWindow, cloud.size());
}

/// Nearest-rank percentile over an ascending-sorted sample vector.
inline double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace rtnn::bench_traffic
